package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Labels name one series of a metric (e.g. {"manager": "AM_F",
// "phase": "sense"}). Rendered sorted by key.
type Labels map[string]string

type histEntry struct {
	name, help string
	labels     Labels
	h          *metrics.Histogram
}

type scalarEntry struct {
	name, help string
	typ        string // "gauge" or "counter"
	labels     Labels
	fn         func() float64
}

// Registry is the assembly point of the introspection plane: every layer
// registers its instruments here and the HTTP server renders them. A
// registry is passive — registering and rendering spawn nothing.
type Registry struct {
	mu         sync.Mutex
	start      time.Time
	tracer     *Tracer
	taskTracer *TaskTracer
	events     *trace.Log
	hists      []histEntry
	scalars    []scalarEntry
	managers   func() any
	cluster    func() ClusterReport
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{start: time.Now()} }

// SetTracer attaches the decision tracer backing /trace and the decision
// counters of /metrics.
func (r *Registry) SetTracer(t *Tracer) {
	r.mu.Lock()
	r.tracer = t
	r.mu.Unlock()
}

// Tracer returns the attached decision tracer (may be nil).
func (r *Registry) Tracer() *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// SetTaskTracer attaches the task-span tracer: /spans serves its ring, and
// its per-stage latency histograms plus sampler/ring counters register as
// /metrics series (repro_task_stage_seconds{stage=...} and the
// repro_task_spans_* counters).
func (r *Registry) SetTaskTracer(tt *TaskTracer) {
	if tt == nil {
		return
	}
	r.mu.Lock()
	r.taskTracer = tt
	r.mu.Unlock()
	for i := 0; i < NumStages; i++ {
		r.AddHistogram("repro_task_stage_seconds",
			"Per-stage latency decomposition of sampled task spans.",
			Labels{"stage": StageNames[i]}, tt.StageHistogram(i))
	}
	sampler, ring := tt.Sampler(), tt.Ring()
	r.AddCounter("repro_task_spans_sampled_total",
		"Tasks the deterministic span sampler selected.", nil,
		func() float64 { s, _ := sampler.Counts(); return float64(s) })
	r.AddCounter("repro_task_spans_skipped_total",
		"Tasks the span sampler passed over.", nil,
		func() float64 { _, k := sampler.Counts(); return float64(k) })
	r.AddCounter("repro_task_spans_published_total",
		"Task spans published into the span ring.", nil,
		func() float64 { return float64(ring.Published()) })
	r.AddCounter("repro_task_spans_dropped_total",
		"Task spans overwritten in the bounded span ring.", nil,
		func() float64 { return float64(ring.Dropped()) })
	r.AddCounter("repro_task_spans_fault_total",
		"Published task spans annotated with a fault.", nil,
		func() float64 { return float64(ring.Faults()) })
}

// TaskTracer returns the attached task-span tracer (may be nil).
func (r *Registry) TaskTracer() *TaskTracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.taskTracer
}

// SetClusterFunc installs the callback assembling the /cluster view — the
// coordinator's scrape-and-merge over its connected workerds. The callback
// runs per request.
func (r *Registry) SetClusterFunc(fn func() ClusterReport) {
	r.mu.Lock()
	r.cluster = fn
	r.mu.Unlock()
}

// Cluster invokes the /cluster callback (nil result when none installed).
func (r *Registry) Cluster() (ClusterReport, bool) {
	r.mu.Lock()
	fn := r.cluster
	r.mu.Unlock()
	if fn == nil {
		return ClusterReport{}, false
	}
	return fn(), true
}

// SetEventLog attaches the autonomic event log whose per-(source, kind)
// counts /metrics exposes.
func (r *Registry) SetEventLog(l *trace.Log) {
	r.mu.Lock()
	r.events = l
	r.mu.Unlock()
}

// SetManagersFunc installs the callback building the /managers hierarchy
// view. The callback's result is rendered as JSON on each request.
func (r *Registry) SetManagersFunc(fn func() any) {
	r.mu.Lock()
	r.managers = fn
	r.mu.Unlock()
}

// Managers invokes the /managers callback (nil when none is installed).
func (r *Registry) Managers() any {
	r.mu.Lock()
	fn := r.managers
	r.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// AddHistogram registers a histogram series.
func (r *Registry) AddHistogram(name, help string, labels Labels, h *metrics.Histogram) {
	if h == nil {
		return
	}
	r.mu.Lock()
	r.hists = append(r.hists, histEntry{name: name, help: help, labels: labels, h: h})
	r.mu.Unlock()
}

// AddGauge registers a gauge series whose value is read at scrape time.
func (r *Registry) AddGauge(name, help string, labels Labels, fn func() float64) {
	r.addScalar(name, help, "gauge", labels, fn)
}

// AddCounter registers a monotone counter series read at scrape time.
func (r *Registry) AddCounter(name, help string, labels Labels, fn func() float64) {
	r.addScalar(name, help, "counter", labels, fn)
}

func (r *Registry) addScalar(name, help, typ string, labels Labels, fn func() float64) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.scalars = append(r.scalars, scalarEntry{name: name, help: help, typ: typ, labels: labels, fn: fn})
	r.mu.Unlock()
}

// fmtLabels renders a label set (plus optional extra pairs) in canonical
// {k="v",...} form, sorted by key; extra pairs win on collision.
func fmtLabels(labels Labels, extra ...string) string {
	merged := map[string]string{}
	for k, v := range labels {
		merged[k] = v
	}
	for i := 0; i+1 < len(extra); i += 2 {
		merged[extra[i]] = extra[i+1]
	}
	if len(merged) == 0 {
		return ""
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, merged[k])
	}
	b.WriteByte('}')
	return b.String()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered instrument — plus the built-in
// tracer/event-log counters — in the Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	start := r.start
	tracer := r.tracer
	events := r.events
	hists := append([]histEntry(nil), r.hists...)
	scalars := append([]scalarEntry(nil), r.scalars...)
	r.mu.Unlock()

	fmt.Fprintf(w, "# HELP repro_uptime_seconds Seconds since the telemetry registry was assembled.\n")
	fmt.Fprintf(w, "# TYPE repro_uptime_seconds gauge\n")
	fmt.Fprintf(w, "repro_uptime_seconds %s\n", fmtFloat(time.Since(start).Seconds()))

	// Scalars, grouped by name in first-registration order.
	seen := map[string]bool{}
	for i, e := range scalars {
		if seen[e.name] {
			continue
		}
		seen[e.name] = true
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.typ)
		for _, f := range scalars[i:] {
			if f.name == e.name {
				fmt.Fprintf(w, "%s%s %s\n", f.name, fmtLabels(f.labels), fmtFloat(f.fn()))
			}
		}
	}

	// Histograms, grouped by name.
	seen = map[string]bool{}
	for i, e := range hists {
		if seen[e.name] {
			continue
		}
		seen[e.name] = true
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", e.name, e.help, e.name)
		for _, f := range hists[i:] {
			if f.name != e.name {
				continue
			}
			s := f.h.Snapshot()
			cum := uint64(0)
			for bi, bound := range s.Bounds {
				cum += s.Counts[bi]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, fmtLabels(f.labels, "le", fmtFloat(bound)), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, fmtLabels(f.labels, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, fmtLabels(f.labels), fmtFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, fmtLabels(f.labels), s.Count)
		}
	}

	if tracer != nil {
		fmt.Fprintf(w, "# HELP repro_decisions_total MAPE decision records emitted.\n# TYPE repro_decisions_total counter\n")
		fmt.Fprintf(w, "repro_decisions_total %d\n", tracer.Total())
		fmt.Fprintf(w, "# HELP repro_decisions_dropped_total Decision records evicted from the trace ring.\n# TYPE repro_decisions_dropped_total counter\n")
		fmt.Fprintf(w, "repro_decisions_dropped_total %d\n", tracer.Dropped())
	}
	if events != nil {
		fmt.Fprintf(w, "# HELP repro_trace_events_evicted_total Autonomic events evicted from the bounded event log.\n# TYPE repro_trace_events_evicted_total counter\n")
		fmt.Fprintf(w, "repro_trace_events_evicted_total %d\n", events.Evicted())
		counts := events.KindCounts()
		keys := make([]trace.EventCountKey, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Source != keys[j].Source {
				return keys[i].Source < keys[j].Source
			}
			return keys[i].Kind < keys[j].Kind
		})
		fmt.Fprintf(w, "# HELP repro_trace_events_total Autonomic events by source manager and kind.\n# TYPE repro_trace_events_total counter\n")
		for _, k := range keys {
			fmt.Fprintf(w, "repro_trace_events_total%s %d\n",
				fmtLabels(nil, "source", k.Source, "kind", string(k.Kind)), counts[k])
		}
	}
}

package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed log-spaced buckets. All state
// is atomic: Observe is lock-free, allocation-free and safe for any number
// of concurrent writers, which lets it sit on hot paths (farm dispatch,
// codec sealing) without perturbing what it measures. Bucket boundaries
// are fixed at construction; there is no resizing and no per-observation
// memory.
type Histogram struct {
	bounds []float64       // ascending upper bounds; values > last go to the overflow bucket
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// An implicit +Inf bucket catches everything above the last bound.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = ExpBuckets(1e-6, 2, 24)
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Uint64, len(own)+1)}
}

// NewLatencyHistogram builds the standard latency layout used by the
// telemetry plane: 24 exponential buckets from 1µs to ~8.4s (factor 2),
// in seconds.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(ExpBuckets(1e-6, 2, 24))
}

// ExpBuckets returns n exponential bucket bounds start, start*factor,
// start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("metrics: bad exponential bucket spec")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. It is allocation-free and lock-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns a copy of the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts has one entry per bound plus the trailing +Inf overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Under concurrent writers the copy
// is weakly consistent (each counter is read atomically), which is all an
// exposition endpoint needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.Bounds(),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge returns the bucket-wise sum of two snapshots — the /cluster
// aggregation primitive, folding per-node stage histograms into one
// cluster-wide distribution. Both snapshots must share the same bucket
// layout (all repro histograms of one metric do, since bounds are fixed at
// construction); an empty snapshot (no bounds) merges as the identity, so
// nodes that have not observed the metric yet fold in cleanly.
func Merge(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Bounds) == 0 {
		return b, nil
	}
	if len(b.Bounds) == 0 {
		return a, nil
	}
	if len(a.Bounds) != len(b.Bounds) {
		return HistogramSnapshot{}, fmt.Errorf("metrics: merge of mismatched histograms (%d vs %d buckets)", len(a.Bounds), len(b.Bounds))
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("metrics: merge of mismatched histograms (bound %d: %g vs %g)", i, a.Bounds[i], b.Bounds[i])
		}
	}
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), a.Bounds...),
		Counts: make([]uint64, len(a.Counts)),
		Count:  a.Count + b.Count,
		Sum:    a.Sum + b.Sum,
	}
	for i := range out.Counts {
		out.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return out, nil
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the winning bucket, Prometheus-style. It returns 0 on an empty
// histogram; estimates from the overflow bucket clamp to the last bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket: no upper bound to interpolate to
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

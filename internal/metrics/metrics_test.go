package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

var epoch = time.Date(2009, 5, 25, 0, 0, 0, 0, time.UTC)

func TestRateMeterBasic(t *testing.T) {
	c := simclock.NewManual(epoch)
	m := NewRateMeter(c, 10*time.Second)
	for i := 0; i < 6; i++ {
		m.Mark()
		c.Advance(time.Second)
	}
	// Six events in six elapsed seconds: the warm-up-corrected rate is
	// 1/s, not the 6/10 = 0.6/s a full-window division would report.
	if got := m.Rate(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Rate = %v, want 1.0", got)
	}
	if m.Total() != 6 {
		t.Fatalf("Total = %d, want 6", m.Total())
	}
}

// TestRateMeterWarmup is the regression test for the warm-up bias: a young
// meter must divide by the elapsed time since its first event, not by the
// full window, or throughput is underreported during the first control
// periods and the perf manager over-provisions workers at startup.
func TestRateMeterWarmup(t *testing.T) {
	c := simclock.NewManual(epoch)
	m := NewRateMeter(c, 10*time.Second)
	// Four events over two seconds: the true rate is 2/s. The biased
	// implementation reported 4/10 = 0.4/s.
	for i := 0; i < 4; i++ {
		m.Mark()
		c.Advance(500 * time.Millisecond)
	}
	if got := m.Rate(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("warm-up Rate = %v, want 2.0 (elapsed-based)", got)
	}
	// Once a full window has passed since the first event, the divisor is
	// the window again: 4 events still inside a 10 s window -> 0.4/s.
	c.Advance(7 * time.Second) // now 9 s after the first event
	if got := m.Rate(); math.Abs(got-4.0/9.0) > 1e-9 {
		t.Fatalf("late warm-up Rate = %v, want %v", got, 4.0/9.0)
	}
	c.Advance(time.Second) // exactly one window after the first event
	// The events from the first ~1.5 s have started to expire by now; the
	// rate must never exceed the remaining count over the window.
	if got := m.Rate(); got > 0.4+1e-9 {
		t.Fatalf("post-warm-up Rate = %v, want <= 0.4", got)
	}
}

// TestRateMeterSteadyState pins the bucketed ring against the behaviour of
// the exact per-timestamp implementation it replaced: one event per second
// with mark-then-advance leaves 9 events inside a 10 s window at t=30 s.
func TestRateMeterSteadyState(t *testing.T) {
	c := simclock.NewManual(epoch)
	m := NewRateMeter(c, 10*time.Second)
	for i := 0; i < 30; i++ {
		m.Mark()
		c.Advance(time.Second)
	}
	if got := m.Rate(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("steady-state Rate = %v, want 0.9", got)
	}
	if m.Total() != 30 {
		t.Fatalf("Total = %d, want 30", m.Total())
	}
}

// TestRateMeterLongIdleGap checks ring rotation across a gap much longer
// than the window (every bucket must be expired, not recycled).
func TestRateMeterLongIdleGap(t *testing.T) {
	c := simclock.NewManual(epoch)
	m := NewRateMeter(c, time.Second)
	m.MarkN(100)
	c.Advance(time.Hour)
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate after long idle = %v, want 0", got)
	}
	m.Mark()
	c.Advance(500 * time.Millisecond)
	// One event still inside the 1 s window; warm-up long over, so the
	// divisor is the full window.
	if got := m.Rate(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Rate after restart = %v, want 1.0", got)
	}
}

func TestRateMeterExpiry(t *testing.T) {
	c := simclock.NewManual(epoch)
	m := NewRateMeter(c, time.Second)
	m.MarkN(10)
	if got := m.Rate(); got != 10 {
		t.Fatalf("Rate = %v, want 10", got)
	}
	c.Advance(2 * time.Second)
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate after expiry = %v, want 0", got)
	}
	if m.Total() != 10 {
		t.Fatalf("Total must survive expiry, got %d", m.Total())
	}
}

func TestRateMeterMarkNNonPositive(t *testing.T) {
	c := simclock.NewManual(epoch)
	m := NewRateMeter(c, time.Second)
	m.MarkN(0)
	m.MarkN(-3)
	if m.Total() != 0 {
		t.Fatalf("Total = %d, want 0", m.Total())
	}
}

func TestRateMeterZeroWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRateMeter(simclock.NewManual(epoch), 0)
}

func TestRateMeterConcurrent(t *testing.T) {
	c := simclock.NewManual(epoch)
	m := NewRateMeter(c, time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Mark()
			}
		}()
	}
	wg.Wait()
	if m.Total() != 800 {
		t.Fatalf("Total = %d, want 800", m.Total())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA must not be initialized")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first sample must seed the average, got %v", e.Value())
	}
	e.Observe(20)
	if got := e.Value(); math.Abs(got-15) > 1e-9 {
		t.Fatalf("Value = %v, want 15", got)
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v: expected panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Mean != 5 || s.Variance != 4 || s.StdDev != 2 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max wrong: %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestQueueImbalance(t *testing.T) {
	if v := QueueImbalance([]int{3, 3, 3}); v != 0 {
		t.Fatalf("balanced queues variance = %v, want 0", v)
	}
	if v := QueueImbalance([]int{0, 6}); v != 9 {
		t.Fatalf("variance = %v, want 9", v)
	}
	if v := QueueImbalance(nil); v != 0 {
		t.Fatalf("nil variance = %v, want 0", v)
	}
}

// Property: imbalance is invariant under permutation and zero iff all equal.
func TestQueueImbalanceProperties(t *testing.T) {
	f := func(lens []uint8) bool {
		qs := make([]int, len(lens))
		for i, l := range lens {
			qs[i] = int(l)
		}
		v := QueueImbalance(qs)
		if v < 0 {
			return false
		}
		// reverse permutation
		rev := make([]int, len(qs))
		for i := range qs {
			rev[i] = qs[len(qs)-1-i]
		}
		if math.Abs(QueueImbalance(rev)-v) > 1e-6 {
			return false
		}
		allEq := true
		for _, q := range qs {
			if q != qs[0] {
				allEq = false
			}
		}
		if allEq && v != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer(0)
	for _, d := range []time.Duration{time.Second, 3 * time.Second, 2 * time.Second} {
		tm.Observe(d)
	}
	if tm.Count() != 3 {
		t.Fatalf("Count = %d", tm.Count())
	}
	if tm.Mean() != 2*time.Second {
		t.Fatalf("Mean = %v", tm.Mean())
	}
	if tm.Min() != time.Second || tm.Max() != 3*time.Second {
		t.Fatalf("Min/Max = %v/%v", tm.Min(), tm.Max())
	}
	if p := tm.Percentile(50); p != 2*time.Second {
		t.Fatalf("P50 = %v", p)
	}
	if p := tm.Percentile(100); p != 3*time.Second {
		t.Fatalf("P100 = %v", p)
	}
}

func TestTimerEmpty(t *testing.T) {
	tm := NewTimer(4)
	if tm.Mean() != 0 || tm.Min() != 0 || tm.Max() != 0 || tm.Percentile(50) != 0 {
		t.Fatal("empty timer must report zeros")
	}
}

func TestTimerReservoirOverflow(t *testing.T) {
	tm := NewTimer(4)
	for i := 0; i < 100; i++ {
		tm.Observe(time.Duration(i) * time.Millisecond)
	}
	if tm.Count() != 100 {
		t.Fatalf("Count = %d", tm.Count())
	}
	if tm.Max() != 99*time.Millisecond {
		t.Fatalf("Max = %v", tm.Max())
	}
}

func TestTimerPercentileBounds(t *testing.T) {
	tm := NewTimer(4)
	tm.Observe(time.Second)
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("p=%v: expected panic", p)
				}
			}()
			tm.Percentile(p)
		}()
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("Value = %v", g.Value())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("throughput")
	if s.Name() != "throughput" {
		t.Fatalf("Name = %q", s.Name())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("empty series must report no last point")
	}
	s.Append(epoch, 0.1)
	s.Append(epoch.Add(time.Second), 0.7)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 0.7 {
		t.Fatalf("Max = %v", s.Max())
	}
	last, ok := s.Last()
	if !ok || last.V != 0.7 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
	pts := s.Points()
	pts[0].V = 99 // must not alias internal storage
	if s.Points()[0].V == 99 {
		t.Fatal("Points leaked internal storage")
	}
}

// Property: the rate meter never reports a negative rate and Total is
// monotone in the number of Mark calls.
func TestRateMeterProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		c := simclock.NewManual(epoch)
		m := NewRateMeter(c, 5*time.Second)
		var marks uint64
		for _, g := range gaps {
			m.Mark()
			marks++
			c.Advance(time.Duration(g) * time.Millisecond)
			if m.Rate() < 0 {
				return false
			}
		}
		return m.Total() == marks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

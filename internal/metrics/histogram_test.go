package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper bounds are inclusive: 0.5 and 1 land in bucket le=1, etc.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+5+10+50+100+1000; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("sum = %g, want 0.003", got)
	}
}

func TestHistogramObserveNoAllocs(t *testing.T) {
	h := NewLatencyHistogram()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42e-6)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const writers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != writers*per {
		t.Fatalf("count = %d, want %d", got, writers*per)
	}
	var want float64
	for w := 1; w <= writers; w++ {
		want += float64(w) * 1e-6 * per
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	q := h.Snapshot().Quantile(0.5)
	if q < 1 || q > 2 {
		t.Fatalf("median = %g, want within (1,2]", q)
	}
	if got := (HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}).Quantile(0.9); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	s := NewLatencyHistogram().Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
	// A zero-value snapshot (no bounds at all) must not panic either.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("Quantile on zero snapshot = %g, want 0", got)
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 5; i++ {
		h.Observe(1e6) // beyond the last bound: every observation overflows
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		if got := s.Quantile(q); got != 100 {
			t.Errorf("Quantile(%g) = %g, want clamp to last bound 100", q, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10, 100})
	b := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50} {
		a.Observe(v)
	}
	for _, v := range []float64{5, 500, 1e6} {
		b.Observe(v)
	}
	ab, err := Merge(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if want := []uint64{1, 2, 1, 2}; len(ab.Counts) != len(want) {
		t.Fatalf("merged counts = %v", ab.Counts)
	} else {
		for i, w := range want {
			if ab.Counts[i] != w {
				t.Errorf("merged bucket %d = %d, want %d (counts %v)", i, ab.Counts[i], w, ab.Counts)
			}
		}
	}
	if ab.Count != 6 {
		t.Errorf("merged count = %d, want 6", ab.Count)
	}
	if want := 0.5 + 5 + 50 + 5 + 500 + 1e6; math.Abs(ab.Sum-want) > 1e-9 {
		t.Errorf("merged sum = %g, want %g", ab.Sum, want)
	}
	// Commutativity: merge order must not matter, because /cluster folds
	// node reports in whatever order the scrapes return.
	ba, err := Merge(b.Snapshot(), a.Snapshot())
	if err != nil {
		t.Fatalf("Merge reversed: %v", err)
	}
	if ab.Count != ba.Count || math.Abs(ab.Sum-ba.Sum) > 1e-9 {
		t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
	}
	for i := range ab.Counts {
		if ab.Counts[i] != ba.Counts[i] {
			t.Fatalf("merge not commutative at bucket %d: %v vs %v", i, ab.Counts, ba.Counts)
		}
	}
}

func TestHistogramMergeIdentityAndMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	a.Observe(5)
	got, err := Merge(a.Snapshot(), HistogramSnapshot{})
	if err != nil || got.Count != 1 {
		t.Fatalf("merge with empty = %+v, %v; want identity", got, err)
	}
	got, err = Merge(HistogramSnapshot{}, a.Snapshot())
	if err != nil || got.Count != 1 {
		t.Fatalf("empty merge = %+v, %v; want identity", got, err)
	}
	b := NewHistogram([]float64{1, 20})
	if _, err := Merge(a.Snapshot(), b.Snapshot()); err == nil {
		t.Fatal("merge of mismatched bounds succeeded, want error")
	}
	c := NewHistogram([]float64{1})
	if _, err := Merge(a.Snapshot(), c.Snapshot()); err == nil {
		t.Fatal("merge of mismatched bucket counts succeeded, want error")
	}
}

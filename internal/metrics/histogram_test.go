package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Upper bounds are inclusive: 0.5 and 1 land in bucket le=1, etc.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+5+10+50+100+1000; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("sum = %g, want 0.003", got)
	}
}

func TestHistogramObserveNoAllocs(t *testing.T) {
	h := NewLatencyHistogram()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42e-6)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const writers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != writers*per {
		t.Fatalf("count = %d, want %d", got, writers*per)
	}
	var want float64
	for w := 1; w <= writers; w++ {
		want += float64(w) * 1e-6 * per
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	q := h.Snapshot().Quantile(0.5)
	if q < 1 || q > 2 {
		t.Fatalf("median = %g, want within (1,2]", q)
	}
	if got := (HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}).Quantile(0.9); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

// Package metrics provides the measurement primitives behind the Autonomic
// Behaviour Controller sensors: sliding-window rate meters (task arrival and
// departure rates), exponentially weighted moving averages, service-time
// statistics and queue-balance statistics.
//
// All types are safe for concurrent use unless stated otherwise, and take
// their notion of time from a simclock.Clock so that unit tests can drive
// them deterministically.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// rateBuckets is the fixed resolution of a RateMeter's ring: the window is
// split into this many slots, so expiry quantization error is bounded by
// window/rateBuckets regardless of event volume.
const rateBuckets = 64

// RateMeter measures an event rate (events per second) over a sliding
// window, as needed by the ArrivalRateBean / DepartureRateBean sensors of
// the farm manager.
//
// Events are accumulated into a fixed ring of rateBuckets counters, one per
// window/rateBuckets slice of time, so Mark and MarkN are O(1) and
// allocation-free at any throughput and the meter's memory is constant —
// the per-event timestamp slice this replaces grew with the event rate and
// paid an O(n) expiry scan on the dispatch hot path.
//
// Before one full window has elapsed since the first event, Rate divides by
// the elapsed time rather than the window: dividing a young meter's count
// by the full window underreports the true rate and made the perf manager
// over-provision workers during the first control periods.
type RateMeter struct {
	mu      sync.Mutex
	clock   simclock.Clock
	window  time.Duration // span covered by the ring (width * rateBuckets)
	width   time.Duration // time covered by one bucket
	start   time.Time     // ring epoch (creation time)
	cur     int64         // absolute index of the newest bucket
	buckets [rateBuckets]uint64
	inWin   uint64    // sum over live buckets
	first   time.Time // first-ever event, for warm-up correction
	hasEvt  bool
	total   uint64
}

// NewRateMeter returns a meter with the given sliding window. The window
// must be positive. Windows shorter than rateBuckets nanoseconds are
// rounded up to the ring resolution.
func NewRateMeter(clock simclock.Clock, window time.Duration) *RateMeter {
	if window <= 0 {
		panic("metrics: non-positive rate window")
	}
	width := window / rateBuckets
	if width <= 0 {
		width = 1
	}
	return &RateMeter{
		clock:  clock,
		window: width * rateBuckets,
		width:  width,
		start:  clock.Now(),
	}
}

// Mark records one event at the current time.
func (r *RateMeter) Mark() { r.MarkN(1) }

// MarkN records n simultaneous events at the current time.
func (r *RateMeter) MarkN(n int) {
	if n <= 0 {
		return
	}
	now := r.clock.Now()
	r.mu.Lock()
	r.advanceLocked(now)
	r.buckets[int(r.cur%rateBuckets)] += uint64(n)
	r.inWin += uint64(n)
	r.total += uint64(n)
	if !r.hasEvt {
		r.first, r.hasEvt = now, true
	}
	r.mu.Unlock()
}

// Rate returns the current event rate in events/second. The averaging span
// is the sliding window or, while the meter is warming up, the time elapsed
// since the first event — whichever is shorter — so young meters report the
// true rate instead of a count diluted over a mostly empty window.
func (r *RateMeter) Rate() float64 {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advanceLocked(now)
	if r.inWin == 0 {
		return 0
	}
	span := r.window
	if elapsed := now.Sub(r.first); elapsed > 0 && elapsed < span {
		span = elapsed
	}
	return float64(r.inWin) / span.Seconds()
}

// Total returns the number of events recorded since creation.
func (r *RateMeter) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Window returns the sliding-window width of the meter.
func (r *RateMeter) Window() time.Duration { return r.window }

// advanceLocked rotates the ring up to the bucket containing now, zeroing
// every bucket that fell out of the window. The work is bounded by
// rateBuckets, independent of how many events were recorded.
func (r *RateMeter) advanceLocked(now time.Time) {
	idx := int64(now.Sub(r.start) / r.width)
	if idx <= r.cur {
		return
	}
	if idx-r.cur >= rateBuckets {
		r.buckets = [rateBuckets]uint64{}
		r.inWin = 0
		r.cur = idx
		return
	}
	for i := r.cur + 1; i <= idx; i++ {
		slot := int(i % rateBuckets)
		r.inWin -= r.buckets[slot]
		r.buckets[slot] = 0
	}
	r.cur = idx
}

// EWMA is an exponentially weighted moving average with configurable
// smoothing factor alpha in (0,1]. Higher alpha weights recent samples more.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given alpha. Panics if alpha is outside
// (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("metrics: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a sample into the average.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	if !e.init {
		e.value, e.init = v, true
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.mu.Unlock()
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Initialized reports whether at least one sample was observed.
func (e *EWMA) Initialized() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.init
}

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	Count    int
	Mean     float64
	Variance float64 // population variance
	StdDev   float64
	Min      float64
	Max      float64
}

// Summarize computes descriptive statistics of vs. An empty slice yields a
// zero Summary.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(vs), Min: vs[0], Max: vs[0]}
	var sum float64
	for _, v := range vs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vs))
	var ss float64
	for _, v := range vs {
		d := v - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(len(vs))
	s.StdDev = math.Sqrt(s.Variance)
	return s
}

// QueueImbalance quantifies how unevenly work is spread over worker queues:
// it is the population variance of the queue lengths. This is the value
// checked by the CheckLoadBalance rule (QueueVarianceBean).
func QueueImbalance(queueLens []int) float64 {
	if len(queueLens) == 0 {
		return 0
	}
	vs := make([]float64, len(queueLens))
	for i, q := range queueLens {
		vs[i] = float64(q)
	}
	return Summarize(vs).Variance
}

// Timer accumulates duration samples (e.g. per-task service time) and
// reports aggregate statistics.
type Timer struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration // bounded reservoir for percentiles
	cap     int
}

// NewTimer returns a Timer keeping at most reservoir samples for percentile
// estimation (0 means the default of 1024).
func NewTimer(reservoir int) *Timer {
	if reservoir <= 0 {
		reservoir = 1024
	}
	return &Timer{cap: reservoir}
}

// Observe records one duration sample.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.sum += d
	if len(t.samples) < t.cap {
		t.samples = append(t.samples, d)
	} else {
		// Deterministic reservoir: overwrite in round-robin order.
		t.samples[int(t.count)%t.cap] = d
	}
}

// Count returns the number of samples observed.
func (t *Timer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Mean returns the mean duration, or 0 with no samples.
func (t *Timer) Mean() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return 0
	}
	return time.Duration(int64(t.sum) / int64(t.count))
}

// Min returns the smallest sample, or 0 with no samples.
func (t *Timer) Min() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.min
}

// Max returns the largest sample, or 0 with no samples.
func (t *Timer) Max() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.max
}

// Percentile returns the p-th percentile (0 < p <= 100) over the retained
// reservoir, or 0 with no samples.
func (t *Timer) Percentile(p float64) time.Duration {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(t.samples))
	copy(sorted, t.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Gauge is a concurrency-safe instantaneous value. It is lock-free — the
// value lives in a single atomic word — so sensors can read it while hot
// paths write it without either side queueing. The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}

// Series is an append-only time series of (instant, value) samples, used by
// the experiment harness to record throughput and resource-usage curves.
// Series is safe for concurrent appends.
type Series struct {
	mu      sync.Mutex
	name    string
	points  []Point
	maxSeen float64
}

// Point is one sample of a Series.
type Point struct {
	T time.Time
	V float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records a sample.
func (s *Series) Append(t time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{T: t, V: v})
	if v > s.maxSeen {
		s.maxSeen = v
	}
	s.mu.Unlock()
}

// Points returns a copy of the samples in append order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Max returns the largest value appended so far.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeen
}

// Last returns the most recent sample and true, or a zero Point and false
// when empty.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

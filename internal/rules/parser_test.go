package rules

import (
	"strings"
	"testing"
)

func TestParseFig5RuleFile(t *testing.T) {
	rs, err := Parse(FarmRuleSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(rs.Rules))
	}
	names := []string{
		"CheckInterArrivalRateLow", "CheckInterArrivalRateHigh",
		"CheckRateLow", "CheckRateHigh", "CheckLoadBalance",
	}
	for i, want := range names {
		if rs.Rules[i].Name != want {
			t.Fatalf("rule %d = %q, want %q", i, rs.Rules[i].Name, want)
		}
	}
	low := rs.Rules[2] // CheckRateLow
	if len(low.Patterns) != 3 {
		t.Fatalf("CheckRateLow has %d patterns, want 3", len(low.Patterns))
	}
	if low.Patterns[0].Var != "departureBean" || low.Patterns[0].Type != BeanDepartureRate {
		t.Fatalf("pattern 0 = %+v", low.Patterns[0])
	}
	if len(low.Actions) != 3 {
		t.Fatalf("CheckRateLow has %d actions, want 3", len(low.Actions))
	}
	if low.Actions[0].Method != "setData" || low.Actions[1].Method != "fireOperation" {
		t.Fatalf("actions = %v %v", low.Actions[0].Method, low.Actions[1].Method)
	}
}

func TestParseSalience(t *testing.T) {
	rs, err := Parse(`
rule "A" salience 10 when B() then log("x"); end
rule "C" salience -5 when B() then log("y"); end`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rules[0].Salience != 10 || rs.Rules[1].Salience != -5 {
		t.Fatalf("saliences = %d, %d", rs.Rules[0].Salience, rs.Rules[1].Salience)
	}
}

func TestParsePatternWithoutBinding(t *testing.T) {
	rs, err := Parse(`rule "A" when SensorBean( value > 1 ) then log("x"); end`)
	if err != nil {
		t.Fatal(err)
	}
	p := rs.Rules[0].Patterns[0]
	if p.Var != "" || p.Type != "SensorBean" || p.Cond == nil {
		t.Fatalf("pattern = %+v", p)
	}
}

func TestParseEmptyCondition(t *testing.T) {
	rs, err := Parse(`rule "A" when $b : B( ) then log("x") end`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rules[0].Patterns[0].Cond != nil {
		t.Fatal("empty parens must yield nil condition")
	}
}

func TestParseSemicolonOptional(t *testing.T) {
	if _, err := Parse(`rule "A" when B() then log("x") log("y"); end`); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"no name":          `rule when B() then log("x"); end`,
		"no when":          `rule "A" B() then log("x"); end`,
		"no then":          `rule "A" when B() log("x"); end`,
		"no end":           `rule "A" when B() then log("x");`,
		"no actions":       `rule "A" when B() then end`,
		"bad pattern":      `rule "A" when $x B() then log("x"); end`,
		"bad action":       `rule "A" when B() then 42(); end`,
		"bad expr":         `rule "A" when B( value < ) then log("x"); end`,
		"unclosed paren":   `rule "A" when B( (value < 1 ) then log("x"); end`,
		"var without dot":  `rule "A" when B( $x ) then log("x"); end`,
		"salience not num": `rule "A" salience x when B() then log("x"); end`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not a rule file")
}

func TestParseExpressionPrecedence(t *testing.T) {
	rs, err := Parse(`rule "A" when $b : B( value + 1 * 2 == 3 && value > 0 || false ) then log("x"); end`)
	if err != nil {
		t.Fatal(err)
	}
	got := rs.Rules[0].Patterns[0].Cond.String()
	want := "(((value + (1 * 2)) == 3) && (value > 0)) || false"
	if got != "("+want+")" && got != want {
		t.Fatalf("cond = %s", got)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	rs := MustParse(FarmRuleSource)
	text := rs.String()
	rs2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, text)
	}
	if len(rs2.Rules) != len(rs.Rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(rs2.Rules), len(rs.Rules))
	}
	for i := range rs.Rules {
		if rs.Rules[i].Name != rs2.Rules[i].Name {
			t.Fatalf("rule %d name changed: %q vs %q", i, rs.Rules[i].Name, rs2.Rules[i].Name)
		}
		if len(rs.Rules[i].Patterns) != len(rs2.Rules[i].Patterns) {
			t.Fatalf("rule %d pattern count changed", i)
		}
		if len(rs.Rules[i].Actions) != len(rs2.Rules[i].Actions) {
			t.Fatalf("rule %d action count changed", i)
		}
	}
}

func TestParseMultiArgAction(t *testing.T) {
	rs, err := Parse(`rule "A" when B() then log("x", 42, true); end`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules[0].Actions[0].Args) != 3 {
		t.Fatalf("args = %v", rs.Rules[0].Actions[0].Args)
	}
}

func TestParseVarFieldInCondition(t *testing.T) {
	src := `
rule "Cross"
  when
    $a : A( value > 0 )
    $b : B( value > $a.value )
  then
    log("ok");
end`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rs.Rules[0].Patterns[1].Cond.String(), "$a.value") {
		t.Fatalf("cond = %s", rs.Rules[0].Patterns[1].Cond)
	}
}

package rules

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token classes of the rule language.
type tokKind int

const (
	tokEOF    tokKind = iota
	tokIdent          // rule, when, then, end, salience, identifiers, dotted paths
	tokVar            // $name
	tokNumber         // 42, 3.14
	tokString         // "quoted"
	tokLParen         // (
	tokRParen         // )
	tokColon          // :
	tokSemi           // ;
	tokComma          // ,
	tokDot            // .
	tokOp             // < <= > >= == != && || ! + - * /
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokOp:
		return "operator"
	default:
		return "?"
	}
}

// token is one lexical unit with its source line for error messages.
type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer turns rule source text into tokens. It supports //-comments and
// /* */ comments like the JBoss DRL syntax of Fig. 5.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

// SyntaxError reports a lexical or parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rules: line %d: %s", e.Line, e.Msg)
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.at(1) == '*':
			start := l.line
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return &SyntaxError{Line: start, Msg: "unterminated block comment"}
				}
				if l.peek() == '*' && l.at(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	line := l.line
	r := l.peek()
	switch {
	case r == '$':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) && isIdentRune(l.peek()) {
			b.WriteRune(l.advance())
		}
		if b.Len() == 0 {
			return token{}, l.errf("'$' must introduce a variable name")
		}
		return token{kind: tokVar, text: b.String(), line: line}, nil
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for l.pos < len(l.src) && isIdentRune(l.peek()) {
			b.WriteRune(l.advance())
		}
		return token{kind: tokIdent, text: b.String(), line: line}, nil
	case unicode.IsDigit(r):
		var b strings.Builder
		seenDot := false
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsDigit(c) {
				b.WriteRune(l.advance())
				continue
			}
			// A dot is part of the number only when followed by a digit,
			// so that "2.value" stays an error rather than lexing oddly.
			if c == '.' && !seenDot && unicode.IsDigit(l.at(1)) {
				seenDot = true
				b.WriteRune(l.advance())
				continue
			}
			break
		}
		return token{kind: tokNumber, text: b.String(), line: line}, nil
	case r == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: line, Msg: "unterminated string literal"}
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				c = l.advance()
				switch c {
				case 'n':
					c = '\n'
				case 't':
					c = '\t'
				}
			}
			b.WriteRune(c)
		}
		return token{kind: tokString, text: b.String(), line: line}, nil
	}
	// punctuation and operators
	two := string(r) + string(l.at(1))
	switch two {
	case "<=", ">=", "==", "!=", "&&", "||":
		l.advance()
		l.advance()
		return token{kind: tokOp, text: two, line: line}, nil
	}
	l.advance()
	switch r {
	case '(':
		return token{kind: tokLParen, text: "(", line: line}, nil
	case ')':
		return token{kind: tokRParen, text: ")", line: line}, nil
	case ':':
		return token{kind: tokColon, text: ":", line: line}, nil
	case ';':
		return token{kind: tokSemi, text: ";", line: line}, nil
	case ',':
		return token{kind: tokComma, text: ",", line: line}, nil
	case '.':
		return token{kind: tokDot, text: ".", line: line}, nil
	case '<', '>', '!', '+', '-', '*', '/':
		return token{kind: tokOp, text: string(r), line: line}, nil
	}
	return token{}, l.errf("unexpected character %q", string(r))
}

// lexAll tokenizes the whole input (EOF token excluded).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

package rules

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

type firedOp struct {
	op   string
	data string
}

type recorder struct {
	ops  []firedOp
	fail error
}

func (r *recorder) FireOperation(op string, act *Activation) error {
	if r.fail != nil {
		return r.fail
	}
	r.ops = append(r.ops, firedOp{op: op, data: act.LastData()})
	return nil
}

func farmMemory(arrival, departure float64, workers int, variance float64) []Bean {
	return []Bean{
		NewBean(BeanArrivalRate, Num(arrival)),
		NewBean(BeanDepartureRate, Num(departure)),
		NewBean(BeanNumWorker, Num(float64(workers))),
		NewBean(BeanQueueVariance, Num(variance)),
	}
}

func farmEngine() *Engine {
	return NewFarmEngine(FarmConstants(0.3, 0.7, 1, 16, 4.0))
}

func TestFarmRulesNotEnoughTasks(t *testing.T) {
	e := farmEngine()
	rec := &recorder{}
	// Arrival below contract low bound: the farm must raise a violation,
	// not add workers (Fig. 4, first phase).
	acts, err := e.Cycle(farmMemory(0.1, 0.1, 2, 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].Rule.Name != "CheckInterArrivalRateLow" {
		t.Fatalf("fired %v", ruleNames(acts))
	}
	if len(rec.ops) != 1 || rec.ops[0] != (firedOp{OpRaiseViolation, TagNotEnoughTasks}) {
		t.Fatalf("ops = %v", rec.ops)
	}
}

func TestFarmRulesAddWorkers(t *testing.T) {
	e := farmEngine()
	rec := &recorder{}
	// Enough input pressure, low departure rate: add executors
	// (Fig. 4, second phase).
	acts, err := e.Cycle(farmMemory(0.5, 0.2, 2, 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := ruleNames(acts); len(got) != 1 || got[0] != "CheckRateLow" {
		t.Fatalf("fired %v", got)
	}
	wantOps := []firedOp{
		{OpAddExecutor, TagAddWorkers},
		{OpBalanceLoad, TagAddWorkers},
	}
	if len(rec.ops) != 2 || rec.ops[0] != wantOps[0] || rec.ops[1] != wantOps[1] {
		t.Fatalf("ops = %v", rec.ops)
	}
}

func TestFarmRulesTooMuchTasks(t *testing.T) {
	e := farmEngine()
	rec := &recorder{}
	// Arrival above the contract: warn the parent (decRate follows).
	acts, err := e.Cycle(farmMemory(1.2, 0.5, 4, 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := ruleNames(acts); len(got) != 1 || got[0] != "CheckInterArrivalRateHigh" {
		t.Fatalf("fired %v", got)
	}
	if rec.ops[0] != (firedOp{OpRaiseViolation, TagTooMuchTasks}) {
		t.Fatalf("ops = %v", rec.ops)
	}
}

func TestFarmRulesRemoveWorker(t *testing.T) {
	e := farmEngine()
	rec := &recorder{}
	acts, err := e.Cycle(farmMemory(0.5, 0.9, 4, 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := ruleNames(acts); len(got) != 1 || got[0] != "CheckRateHigh" {
		t.Fatalf("fired %v", got)
	}
	if rec.ops[0].op != OpRemoveExecutor || rec.ops[1].op != OpBalanceLoad {
		t.Fatalf("ops = %v", rec.ops)
	}
}

func TestFarmRulesRemoveWorkerRespectsMin(t *testing.T) {
	e := farmEngine()
	rec := &recorder{}
	// departure high but already at the minimum parallelism degree
	acts, err := e.Cycle(farmMemory(0.5, 0.9, 1, 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 0 {
		t.Fatalf("fired %v, want nothing", ruleNames(acts))
	}
}

func TestFarmRulesRebalance(t *testing.T) {
	e := farmEngine()
	rec := &recorder{}
	acts, err := e.Cycle(farmMemory(0.5, 0.5, 4, 9.0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := ruleNames(acts); len(got) != 1 || got[0] != "CheckLoadBalance" {
		t.Fatalf("fired %v", got)
	}
	if rec.ops[0].op != OpBalanceLoad {
		t.Fatalf("ops = %v", rec.ops)
	}
}

func TestFarmRulesQuiescent(t *testing.T) {
	e := farmEngine()
	acts, err := e.Cycle(farmMemory(0.5, 0.5, 4, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 0 {
		t.Fatalf("fired %v in steady state", ruleNames(acts))
	}
}

func TestFireableDoesNotExecute(t *testing.T) {
	e := farmEngine()
	rec := &recorder{}
	rules, err := e.Fireable(farmMemory(0.1, 0.1, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Name != "CheckInterArrivalRateLow" {
		t.Fatalf("fireable = %v", rules)
	}
	if len(rec.ops) != 0 {
		t.Fatal("Fireable executed actions")
	}
}

func TestSaliencePriority(t *testing.T) {
	rs := MustParse(`
rule "Low" when S() then log("low"); end
rule "High" salience 100 when S() then log("high"); end`)
	e := New(rs, nil)
	acts, err := e.Cycle([]Bean{NewBean("S", Num(1))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 || acts[0].Rule.Name != "High" || acts[1].Rule.Name != "Low" {
		t.Fatalf("order = %v", ruleNames(acts))
	}
}

func TestCycleLimit(t *testing.T) {
	rs := MustParse(`
rule "A" when S() then log("a"); end
rule "B" when S() then log("b"); end`)
	e := New(rs, nil)
	acts, err := e.CycleLimit([]Bean{NewBean("S", Num(1))}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 {
		t.Fatalf("fired %d rules, want 1", len(acts))
	}
}

func TestDistinctBeansPerPattern(t *testing.T) {
	// Two patterns of the same type must bind two different beans.
	rs := MustParse(`
rule "Pair"
  when
    $a : S( value > 0 )
    $b : S( value > $a.value )
  then
    log("pair");
end`)
	e := New(rs, nil)
	// Single bean: cannot bind both patterns.
	acts, err := e.Cycle([]Bean{NewBean("S", Num(1))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 0 {
		t.Fatal("one bean matched two patterns")
	}
	// Two beans in unfavourable order: backtracking must still match.
	acts, err = e.Cycle([]Bean{NewBean("S", Num(5)), NewBean("S", Num(1))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 {
		t.Fatal("backtracking failed to find the valid binding")
	}
	if v, _ := acts[0].Bound("a").Field("value"); v.AsStr() != "1" {
		t.Fatalf("$a bound to %v, want 1", v)
	}
}

func TestEffectorErrorPropagates(t *testing.T) {
	e := farmEngine()
	boom := errors.New("boom")
	_, err := e.Cycle(farmMemory(0.1, 0.1, 2, 0), &recorder{fail: boom})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownIdentifierInConditionFails(t *testing.T) {
	rs := MustParse(`rule "A" when S( value < NO_SUCH_CONST ) then log("x"); end`)
	e := New(rs, nil)
	_, err := e.Cycle([]Bean{NewBean("S", Num(1))}, nil)
	if err == nil || !strings.Contains(err.Error(), "NO_SUCH_CONST") {
		t.Fatalf("err = %v", err)
	}
}

func TestSymbolicActionArguments(t *testing.T) {
	// Unknown constants in action args degrade to their last segment.
	rs := MustParse(`rule "A" when $s : S() then $s.setData(Other.SOME_TAG); $s.fireOperation(Ops.DO_IT); end`)
	e := New(rs, nil)
	rec := &recorder{}
	if _, err := e.Cycle([]Bean{NewBean("S", Num(1))}, rec); err != nil {
		t.Fatal(err)
	}
	if rec.ops[0] != (firedOp{"DO_IT", "SOME_TAG"}) {
		t.Fatalf("ops = %v", rec.ops)
	}
}

func TestLogAction(t *testing.T) {
	rs := MustParse(`rule "A" when S() then log("hello", 42); end`)
	e := New(rs, nil)
	acts, err := e.Cycle([]Bean{NewBean("S", Num(1))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts[0].Logs) != 1 || acts[0].Logs[0] != "hello 42" {
		t.Fatalf("logs = %v", acts[0].Logs)
	}
}

func TestSetDataArity(t *testing.T) {
	rs := MustParse(`rule "A" when $s : S() then $s.setData(1, 2); end`)
	if _, err := New(rs, nil).Cycle([]Bean{NewBean("S", Num(1))}, nil); err == nil {
		t.Fatal("setData with two args must fail")
	}
}

func TestUnknownActionMethod(t *testing.T) {
	rs := MustParse(`rule "A" when $s : S() then $s.explode(); end`)
	if _, err := New(rs, nil).Cycle([]Bean{NewBean("S", Num(1))}, nil); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestDivisionByZero(t *testing.T) {
	rs := MustParse(`rule "A" when S( value / 0 > 1 ) then log("x"); end`)
	if _, err := New(rs, nil).Cycle([]Bean{NewBean("S", Num(1))}, nil); err == nil {
		t.Fatal("division by zero must fail")
	}
}

func TestArithmeticAndLogic(t *testing.T) {
	rs := MustParse(`rule "A" when S( (value * 2 + 1 == 7) && !(value < 0) || false ) then log("x"); end`)
	e := New(rs, nil)
	acts, err := e.Cycle([]Bean{NewBean("S", Num(3))}, nil)
	if err != nil || len(acts) != 1 {
		t.Fatalf("acts=%v err=%v", acts, err)
	}
	acts, err = e.Cycle([]Bean{NewBean("S", Num(4))}, nil)
	if err != nil || len(acts) != 0 {
		t.Fatalf("acts=%v err=%v", acts, err)
	}
}

func TestStringComparison(t *testing.T) {
	rs := MustParse(`rule "A" when S( name == "farm" ) then log("x"); end`)
	e := New(rs, nil)
	b := NewBean("S", Num(0)).Set("name", Str("farm"))
	acts, err := e.Cycle([]Bean{b}, nil)
	if err != nil || len(acts) != 1 {
		t.Fatalf("acts=%v err=%v", acts, err)
	}
}

func TestConstantsLookup(t *testing.T) {
	c := Constants{"A.B.C": Num(1), "D": Num(2)}
	if v, ok := c.Lookup("A.B.C"); !ok || v.AsStr() != "1" {
		t.Fatalf("qualified lookup failed: %v %v", v, ok)
	}
	if v, ok := c.Lookup("X.Y.D"); !ok || v.AsStr() != "2" {
		t.Fatalf("suffix lookup failed: %v %v", v, ok)
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Fatal("missing constant found")
	}
}

func TestFarmConstantsValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"lo>hi":   func() { FarmConstants(2, 1, 1, 4, 0) },
		"neg lo":  func() { FarmConstants(-1, 1, 1, 4, 0) },
		"min<1":   func() { FarmConstants(0, 1, 0, 4, 0) },
		"max<min": func() { FarmConstants(0, 1, 4, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: the farm rule set never fires both ADD_EXECUTOR and
// REMOVE_EXECUTOR in the same cycle, for any sensor reading.
func TestFarmRulesNeverAddAndRemoveTogether(t *testing.T) {
	e := farmEngine()
	f := func(arr, dep uint8, workers uint8, varc uint8) bool {
		rec := &recorder{}
		mem := farmMemory(float64(arr)/100, float64(dep)/100, int(workers%20)+1, float64(varc)/10)
		if _, err := e.Cycle(mem, rec); err != nil {
			return false
		}
		add, rem := false, false
		for _, op := range rec.ops {
			switch op.op {
			case OpAddExecutor:
				add = true
			case OpRemoveExecutor:
				rem = true
			}
		}
		return !(add && rem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueConversions(t *testing.T) {
	if n, err := Bool(true).AsNum(); err != nil || n != 1 {
		t.Fatalf("Bool->Num = %v, %v", n, err)
	}
	if _, err := Str("x").AsNum(); err == nil {
		t.Fatal("Str->Num must fail")
	}
	if b, err := Num(2).AsBool(); err != nil || !b {
		t.Fatalf("Num->Bool = %v, %v", b, err)
	}
	if _, err := Str("x").AsBool(); err == nil {
		t.Fatal("Str->Bool must fail")
	}
	if Num(1).String() != "1" || Str("s").String() != "s" || Bool(false).String() != "false" {
		t.Fatal("String renderings wrong")
	}
	if !Num(1).Equal(Bool(true)) {
		t.Fatal("Num(1) must equal Bool(true)")
	}
	if Str("a").Equal(Num(0)) {
		t.Fatal("Str must not equal Num")
	}
}

func ruleNames(acts []*Activation) []string {
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = a.Rule.Name
	}
	return out
}

package rules

import (
	"fmt"
	"sort"
)

// Effector receives the operations fired by rule actions. The Autonomic
// Behaviour Controller implements this interface with its actuators
// (ADD_EXECUTOR, BALANCE_LOAD, RAISE_VIOLATION, ...).
type Effector interface {
	// FireOperation performs op. act carries the activation context,
	// including any tags accumulated by preceding setData actions.
	FireOperation(op string, act *Activation) error
}

// EffectorFunc adapts a function to the Effector interface.
type EffectorFunc func(op string, act *Activation) error

// FireOperation implements Effector.
func (f EffectorFunc) FireOperation(op string, act *Activation) error {
	return f(op, act)
}

// Activation is one rule firing: the rule, its variable bindings and the
// data tags set by setData actions before each fireOperation.
type Activation struct {
	Rule     *Rule
	Bindings map[string]Bean
	Data     []string // tags accumulated by setData, in order
	Logs     []string // output of log(...) actions
}

// LastData returns the most recent setData tag, or "".
func (a *Activation) LastData() string {
	if len(a.Data) == 0 {
		return ""
	}
	return a.Data[len(a.Data)-1]
}

// Bound returns the bean bound to the named variable, or nil.
func (a *Activation) Bound(name string) Bean {
	return a.Bindings[name]
}

// Engine evaluates a RuleSet against working memory once per control-loop
// cycle, JBoss-style: fireable rules are selected, prioritized by salience
// (declaration order breaking ties) and executed.
type Engine struct {
	rules  []*Rule // sorted by (salience desc, declaration order)
	consts Constants
}

// New builds an engine over the given rule set and constant table.
func New(rs *RuleSet, consts Constants) *Engine {
	ordered := make([]*Rule, len(rs.Rules))
	copy(ordered, rs.Rules)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Salience > ordered[j].Salience
	})
	return &Engine{rules: ordered, consts: consts}
}

// Rules returns the rules in firing-priority order.
func (e *Engine) Rules() []*Rule {
	out := make([]*Rule, len(e.rules))
	copy(out, e.rules)
	return out
}

// Constants returns the engine's constant table.
func (e *Engine) Constants() Constants { return e.consts }

// Cycle runs one control-loop iteration: every fireable rule is executed
// once, in priority order, against the given working memory. It returns
// the executed activations. A nil effector discards fired operations.
func (e *Engine) Cycle(memory []Bean, eff Effector) ([]*Activation, error) {
	return e.CycleLimit(memory, eff, 0)
}

// CycleLimit is Cycle with an upper bound on the number of rules fired
// (0 means no bound).
func (e *Engine) CycleLimit(memory []Bean, eff Effector, maxFirings int) ([]*Activation, error) {
	var fired []*Activation
	for _, r := range e.rules {
		if maxFirings > 0 && len(fired) >= maxFirings {
			break
		}
		act, ok, err := e.match(r, memory)
		if err != nil {
			return fired, fmt.Errorf("rule %q: %w", r.Name, err)
		}
		if !ok {
			continue
		}
		if err := e.execute(act, eff); err != nil {
			return fired, fmt.Errorf("rule %q: %w", r.Name, err)
		}
		fired = append(fired, act)
	}
	return fired, nil
}

// RuleVerdict reports, for one rule in an explained cycle, whether it
// fired and — when it did not — which pattern could not be satisfied.
// It is the machine-readable form of "which precondition failed" that the
// telemetry decision trace exposes.
type RuleVerdict struct {
	Rule     string
	Salience int
	Fired    bool
	// FailingPattern renders the first pattern, in declaration order, for
	// which no bean satisfied type+condition under the greedy bindings of
	// the preceding patterns, e.g. `DepartureRateBean(value < 0.6)`.
	// Empty when the rule fired; "no consistent binding" when every
	// pattern matches some bean in isolation but no complete assignment
	// exists (a backtracking failure the greedy walk cannot localize).
	FailingPattern string
}

// CycleExplain is CycleLimit plus a per-rule verdict: every rule is
// reported as fired or, when it did not fire, with its failing predicate.
// maxFirings <= 0 means no bound.
func (e *Engine) CycleExplain(memory []Bean, eff Effector, maxFirings int) ([]*Activation, []RuleVerdict, error) {
	var fired []*Activation
	verdicts := make([]RuleVerdict, 0, len(e.rules))
	for _, r := range e.rules {
		v := RuleVerdict{Rule: r.Name, Salience: r.Salience}
		if maxFirings > 0 && len(fired) >= maxFirings {
			v.FailingPattern = "firing limit reached"
			verdicts = append(verdicts, v)
			continue
		}
		act, ok, err := e.match(r, memory)
		if err != nil {
			return fired, verdicts, fmt.Errorf("rule %q: %w", r.Name, err)
		}
		if ok {
			if err := e.execute(act, eff); err != nil {
				return fired, verdicts, fmt.Errorf("rule %q: %w", r.Name, err)
			}
			fired = append(fired, act)
			v.Fired = true
		} else {
			v.FailingPattern = e.explainFailure(r, memory)
		}
		verdicts = append(verdicts, v)
	}
	return fired, verdicts, nil
}

// explainFailure walks the rule's patterns greedily and renders the first
// one no unbound bean satisfies. Evaluation errors on candidate beans are
// treated as non-matches (the authoritative error surfaces via match).
func (e *Engine) explainFailure(r *Rule, memory []Bean) string {
	bindings := map[string]Bean{}
	for _, p := range r.Patterns {
		found := false
		for _, b := range memory {
			if b.BeanType() != p.Type || alreadyBound(bindings, b) {
				continue
			}
			if p.Cond != nil {
				ev := &env{current: b, bindings: bindings, consts: e.consts}
				v, err := p.Cond.eval(ev)
				if err != nil {
					continue
				}
				hold, err := v.AsBool()
				if err != nil || !hold {
					continue
				}
			}
			if p.Var != "" {
				bindings[p.Var] = b
			}
			found = true
			break
		}
		if !found {
			return renderPattern(p)
		}
	}
	return "no consistent binding"
}

// renderPattern prints a pattern in source syntax, Type(cond).
func renderPattern(p *Pattern) string {
	cond := ""
	if p.Cond != nil {
		cond = p.Cond.String()
	}
	return p.Type + "(" + cond + ")"
}

// Fireable reports, without executing actions, which rules would fire
// against the given memory. The managers use it to detect the passive
// state: no fireable "active" rules.
func (e *Engine) Fireable(memory []Bean) ([]*Rule, error) {
	var out []*Rule
	for _, r := range e.rules {
		_, ok, err := e.match(r, memory)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", r.Name, err)
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// match binds the rule's patterns against memory with backtracking and
// returns the first complete activation.
func (e *Engine) match(r *Rule, memory []Bean) (*Activation, bool, error) {
	bindings := map[string]Bean{}
	ok, err := e.matchFrom(r.Patterns, memory, bindings)
	if err != nil || !ok {
		return nil, false, err
	}
	return &Activation{Rule: r, Bindings: bindings}, true, nil
}

func (e *Engine) matchFrom(pats []*Pattern, memory []Bean, bindings map[string]Bean) (bool, error) {
	if len(pats) == 0 {
		return true, nil
	}
	p := pats[0]
	for _, b := range memory {
		if b.BeanType() != p.Type {
			continue
		}
		if alreadyBound(bindings, b) {
			continue
		}
		if p.Cond != nil {
			ev := &env{current: b, bindings: bindings, consts: e.consts}
			v, err := p.Cond.eval(ev)
			if err != nil {
				return false, err
			}
			hold, err := v.AsBool()
			if err != nil {
				return false, fmt.Errorf("pattern %s: condition is not boolean", p.Type)
			}
			if !hold {
				continue
			}
		}
		if p.Var != "" {
			bindings[p.Var] = b
		}
		ok, err := e.matchFrom(pats[1:], memory, bindings)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		if p.Var != "" {
			delete(bindings, p.Var)
		}
	}
	return false, nil
}

func alreadyBound(bindings map[string]Bean, b Bean) bool {
	for _, bound := range bindings {
		if bound == b {
			return true
		}
	}
	return false
}

// execute runs the activation's actions in order.
func (e *Engine) execute(act *Activation, eff Effector) error {
	for _, a := range act.Rule.Actions {
		ev := &env{bindings: act.Bindings, consts: e.consts, symbolic: true}
		args := make([]Value, len(a.Args))
		for i, arg := range a.Args {
			v, err := arg.eval(ev)
			if err != nil {
				return fmt.Errorf("action %s: %w", a.Method, err)
			}
			args[i] = v
		}
		switch a.Method {
		case "setData":
			if len(args) != 1 {
				return fmt.Errorf("setData takes exactly one argument, got %d", len(args))
			}
			act.Data = append(act.Data, args[0].AsStr())
		case "fireOperation":
			if len(args) != 1 {
				return fmt.Errorf("fireOperation takes exactly one argument, got %d", len(args))
			}
			if eff != nil {
				if err := eff.FireOperation(args[0].AsStr(), act); err != nil {
					return err
				}
			}
		case "log":
			parts := make([]string, len(args))
			for i, v := range args {
				parts[i] = v.AsStr()
			}
			act.Logs = append(act.Logs, joinSpace(parts))
		default:
			return fmt.Errorf("unknown action method %q", a.Method)
		}
	}
	return nil
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

package rules

import (
	"fmt"
	"strings"
)

// RuleSet is a parsed collection of rules, in declaration order.
type RuleSet struct {
	Rules []*Rule
}

// Rule is one precondition–action rule.
type Rule struct {
	Name     string
	Salience int // higher fires first; 0 is the default
	Patterns []*Pattern
	Actions  []*Action
	Line     int
}

// Pattern matches one bean in working memory: `$var : Type ( cond )`.
// Cond may be nil (match any bean of the type) and Var may be empty (no
// binding).
type Pattern struct {
	Var  string
	Type string
	Cond Expr
}

// Action is one statement of a rule's then-part: a method call either on a
// bound variable (`$x.fireOperation(OP);`) or bare (`log("...");`).
type Action struct {
	Var    string // receiver binding; empty for bare calls
	Method string
	Args   []Expr
	Line   int
}

// env carries the name-resolution context of an expression evaluation.
type env struct {
	current  Bean            // bean under test in a pattern; nil in actions
	bindings map[string]Bean // previously bound pattern variables
	consts   Constants
	symbolic bool // actions: unresolved identifiers become string tags
}

func (e *env) lookupIdent(path []string) (Value, error) {
	name := strings.Join(path, ".")
	// A bare identifier may be a field of the bean under test.
	if e.current != nil && len(path) == 1 {
		if v, ok := e.current.Field(path[0]); ok {
			return v, nil
		}
	}
	if e.consts != nil {
		if v, ok := e.consts.Lookup(name); ok {
			return v, nil
		}
	}
	if e.symbolic {
		// In action arguments, unknown constants degrade to their last
		// path segment as a symbolic tag (the paper's
		// ManagersConstants.notEnoughTasks_VIOL style).
		return Str(path[len(path)-1]), nil
	}
	return Value{}, fmt.Errorf("rules: unknown identifier %q", name)
}

// Expr is a rule expression node.
type Expr interface {
	eval(*env) (Value, error)
	String() string
}

type numLit struct{ v float64 }

func (n numLit) eval(*env) (Value, error) { return Num(n.v), nil }
func (n numLit) String() string           { return Num(n.v).String() }

type strLit struct{ s string }

func (s strLit) eval(*env) (Value, error) { return Str(s.s), nil }
func (s strLit) String() string           { return fmt.Sprintf("%q", s.s) }

type boolLit struct{ b bool }

func (b boolLit) eval(*env) (Value, error) { return Bool(b.b), nil }
func (b boolLit) String() string           { return Bool(b.b).String() }

type identRef struct{ path []string }

func (i identRef) eval(e *env) (Value, error) { return e.lookupIdent(i.path) }
func (i identRef) String() string             { return strings.Join(i.path, ".") }

type varRef struct {
	name  string // binding name without '$'
	field string
}

func (v varRef) eval(e *env) (Value, error) {
	b, ok := e.bindings[v.name]
	if !ok {
		return Value{}, fmt.Errorf("rules: unbound variable $%s", v.name)
	}
	val, ok := b.Field(v.field)
	if !ok {
		return Value{}, fmt.Errorf("rules: bean %s has no field %q", b.BeanType(), v.field)
	}
	return val, nil
}

func (v varRef) String() string { return "$" + v.name + "." + v.field }

type unary struct {
	op string // "-" or "!"
	x  Expr
}

func (u unary) eval(e *env) (Value, error) {
	v, err := u.x.eval(e)
	if err != nil {
		return Value{}, err
	}
	switch u.op {
	case "-":
		n, err := v.AsNum()
		if err != nil {
			return Value{}, err
		}
		return Num(-n), nil
	case "!":
		b, err := v.AsBool()
		if err != nil {
			return Value{}, err
		}
		return Bool(!b), nil
	}
	return Value{}, fmt.Errorf("rules: unknown unary operator %q", u.op)
}

func (u unary) String() string { return u.op + u.x.String() }

type binary struct {
	op   string
	l, r Expr
}

func (b binary) eval(e *env) (Value, error) {
	// Short-circuit logical operators.
	switch b.op {
	case "&&", "||":
		lv, err := b.l.eval(e)
		if err != nil {
			return Value{}, err
		}
		lb, err := lv.AsBool()
		if err != nil {
			return Value{}, err
		}
		if b.op == "&&" && !lb {
			return Bool(false), nil
		}
		if b.op == "||" && lb {
			return Bool(true), nil
		}
		rv, err := b.r.eval(e)
		if err != nil {
			return Value{}, err
		}
		rb, err := rv.AsBool()
		if err != nil {
			return Value{}, err
		}
		return Bool(rb), nil
	}
	lv, err := b.l.eval(e)
	if err != nil {
		return Value{}, err
	}
	rv, err := b.r.eval(e)
	if err != nil {
		return Value{}, err
	}
	switch b.op {
	case "==":
		return Bool(lv.Equal(rv)), nil
	case "!=":
		return Bool(!lv.Equal(rv)), nil
	}
	ln, err := lv.AsNum()
	if err != nil {
		return Value{}, err
	}
	rn, err := rv.AsNum()
	if err != nil {
		return Value{}, err
	}
	switch b.op {
	case "<":
		return Bool(ln < rn), nil
	case "<=":
		return Bool(ln <= rn), nil
	case ">":
		return Bool(ln > rn), nil
	case ">=":
		return Bool(ln >= rn), nil
	case "+":
		return Num(ln + rn), nil
	case "-":
		return Num(ln - rn), nil
	case "*":
		return Num(ln * rn), nil
	case "/":
		if rn == 0 {
			return Value{}, fmt.Errorf("rules: division by zero")
		}
		return Num(ln / rn), nil
	}
	return Value{}, fmt.Errorf("rules: unknown operator %q", b.op)
}

func (b binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.l, b.op, b.r)
}

// String renders the rule back in the source syntax.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule %q\n", r.Name)
	if r.Salience != 0 {
		fmt.Fprintf(&b, "  salience %d\n", r.Salience)
	}
	b.WriteString("  when\n")
	for _, p := range r.Patterns {
		b.WriteString("    ")
		if p.Var != "" {
			fmt.Fprintf(&b, "$%s : ", p.Var)
		}
		b.WriteString(p.Type)
		if p.Cond != nil {
			fmt.Fprintf(&b, "( %s )", p.Cond)
		} else {
			b.WriteString("( )")
		}
		b.WriteByte('\n')
	}
	b.WriteString("  then\n")
	for _, a := range r.Actions {
		b.WriteString("    ")
		if a.Var != "" {
			fmt.Fprintf(&b, "$%s.", a.Var)
		}
		b.WriteString(a.Method)
		b.WriteByte('(')
		for i, arg := range a.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(arg.String())
		}
		b.WriteString(");\n")
	}
	b.WriteString("end")
	return b.String()
}

// String renders the whole set in source syntax.
func (rs *RuleSet) String() string {
	parts := make([]string, len(rs.Rules))
	for i, r := range rs.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n\n")
}

package rules

import (
	"strings"
	"testing"
)

func TestValueKind(t *testing.T) {
	if Num(1).Kind() != KindNum || Str("s").Kind() != KindStr || Bool(true).Kind() != KindBool {
		t.Fatal("kinds wrong")
	}
}

func TestUnaryOperators(t *testing.T) {
	rs := MustParse(`rule "A" when S( -(value) == -3 && !(value != 3) ) then log("x"); end`)
	e := New(rs, nil)
	acts, err := e.Cycle([]Bean{NewBean("S", Num(3))}, nil)
	if err != nil || len(acts) != 1 {
		t.Fatalf("acts=%v err=%v", acts, err)
	}
	// Unary on non-numeric / non-boolean must error.
	bad := MustParse(`rule "B" when S( -(name) == 1 ) then log("x"); end`)
	b := NewBean("S", Num(0)).Set("name", Str("x"))
	if _, err := New(bad, nil).Cycle([]Bean{b}, nil); err == nil {
		t.Fatal("negating a string accepted")
	}
	bad2 := MustParse(`rule "C" when S( !name ) then log("x"); end`)
	if _, err := New(bad2, nil).Cycle([]Bean{b}, nil); err == nil {
		t.Fatal("notting a string accepted")
	}
}

func TestVarRefErrors(t *testing.T) {
	// Reference to a field the bound bean lacks.
	rs := MustParse(`
rule "A"
  when
    $a : A( value > 0 )
    $b : B( value > $a.missing )
  then
    log("x");
end`)
	mem := []Bean{NewBean("A", Num(1)), NewBean("B", Num(2))}
	if _, err := New(rs, nil).Cycle(mem, nil); err == nil {
		t.Fatal("missing field accepted")
	}
}

func TestEngineAccessors(t *testing.T) {
	consts := Constants{"X": Num(1)}
	e := New(MustParse(`rule "A" when S() then log("x"); end`), consts)
	if len(e.Rules()) != 1 || e.Rules()[0].Name != "A" {
		t.Fatalf("Rules = %v", e.Rules())
	}
	if v, ok := e.Constants().Lookup("X"); !ok || v.AsStr() != "1" {
		t.Fatalf("Constants = %v %v", v, ok)
	}
}

func TestEffectorFunc(t *testing.T) {
	called := ""
	eff := EffectorFunc(func(op string, act *Activation) error {
		called = op
		return nil
	})
	e := New(MustParse(`rule "A" when $s : S() then $s.fireOperation(GO); end`), nil)
	if _, err := e.Cycle([]Bean{NewBean("S", Num(1))}, eff); err != nil {
		t.Fatal(err)
	}
	if called != "GO" {
		t.Fatalf("called = %q", called)
	}
}

func TestConditionCoercion(t *testing.T) {
	// Numbers coerce to booleans (non-zero is true)...
	rs := MustParse(`rule "A" when S( value + 1 ) then log("x"); end`)
	acts, err := New(rs, nil).Cycle([]Bean{NewBean("S", Num(1))}, nil)
	if err != nil || len(acts) != 1 {
		t.Fatalf("numeric condition: acts=%v err=%v", acts, err)
	}
	// ...but strings do not.
	bad := MustParse(`rule "B" when S( name ) then log("x"); end`)
	b := NewBean("S", Num(0)).Set("name", Str("farm"))
	if _, err := New(bad, nil).Cycle([]Bean{b}, nil); err == nil {
		t.Fatal("string condition accepted")
	}
}

func TestPipeEngineFiring(t *testing.T) {
	e := NewPipeEngine()
	fired := []string{}
	eff := EffectorFunc(func(op string, act *Activation) error {
		fired = append(fired, op)
		return nil
	})
	mkViol := func(tag string, done float64) Bean {
		return NewBean(BeanViolation, Num(0)).
			Set("tag", Str(tag)).
			Set("arrival", Num(0.2)).
			Set("done", Num(done))
	}
	if _, err := e.Cycle([]Bean{mkViol(TagNotEnoughTasks, 0)}, eff); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != OpIncRate {
		t.Fatalf("fired = %v", fired)
	}
	fired = nil
	if _, err := e.Cycle([]Bean{mkViol(TagTooMuchTasks, 0)}, eff); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != OpDecRate {
		t.Fatalf("fired = %v", fired)
	}
	fired = nil
	// End-of-stream outranks the plain notEnough reaction on the same
	// bean (salience).
	if _, err := e.Cycle([]Bean{mkViol(TagNotEnoughTasks, 1)}, eff); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != OpEndStream {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTokKindStrings(t *testing.T) {
	for _, k := range []tokKind{tokEOF, tokIdent, tokVar, tokNumber, tokString,
		tokLParen, tokRParen, tokColon, tokSemi, tokComma, tokDot, tokOp} {
		if k.String() == "?" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if (token{kind: tokEOF}).String() != "end of input" {
		t.Fatal("EOF token string wrong")
	}
}

func TestRuleStringWithSalienceAndEmptyPattern(t *testing.T) {
	rs := MustParse(`rule "A" salience 5 when S() then log("x"); end`)
	s := rs.Rules[0].String()
	if !strings.Contains(s, "salience 5") || !strings.Contains(s, "S( )") {
		t.Fatalf("rendered:\n%s", s)
	}
}

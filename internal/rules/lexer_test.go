package rules

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lexAll(`rule "X" when $a : B( value < 0.5 ) then end`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{
		tokIdent, tokString, tokIdent, tokVar, tokColon, tokIdent,
		tokLParen, tokIdent, tokOp, tokNumber, tokRParen, tokIdent, tokIdent,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (%v)", i, got[i], want[i], toks[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexAll("// line comment\nfoo /* block\ncomment */ bar")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].text != "foo" || toks[1].text != "bar" {
		t.Fatalf("toks = %v", toks)
	}
	if toks[1].line != 3 {
		t.Fatalf("bar on line %d, want 3", toks[1].line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := lexAll("/* never closed"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLexTwoCharOps(t *testing.T) {
	toks, err := lexAll("<= >= == != && || < > !")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "==", "!=", "&&", "||", "<", ">", "!"}
	if len(toks) != len(want) {
		t.Fatalf("toks = %v", toks)
	}
	for i, w := range want {
		if toks[i].kind != tokOp || toks[i].text != w {
			t.Fatalf("tok %d = %v, want op %q", i, toks[i], w)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll("3.14 42 0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"3.14", "42", "0.5"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Fatalf("tok %d = %v, want number %q", i, toks[i], w)
		}
	}
}

func TestLexDottedPathIsDotToken(t *testing.T) {
	toks, err := lexAll("A.B")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].kind != tokDot {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lexAll(`"a\nb\tc\"d"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "a\nb\tc\"d" {
		t.Fatalf("string = %q", toks[0].text)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := lexAll(`"never closed`); err == nil {
		t.Fatal("expected error")
	}
}

func TestLexBareDollar(t *testing.T) {
	if _, err := lexAll("$ :"); err == nil {
		t.Fatal("expected error for '$' without name")
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	_, err := lexAll("foo @ bar")
	if err == nil || !strings.Contains(err.Error(), "@") {
		t.Fatalf("err = %v", err)
	}
}

func TestLexLineNumbersInErrors(t *testing.T) {
	_, err := lexAll("ok\nok\n@")
	se, ok := err.(*SyntaxError)
	if !ok || se.Line != 3 {
		t.Fatalf("err = %v", err)
	}
}

package rules

import "fmt"

// Operation names fired by the standard rule files. The ABC actuators
// implement them (see internal/abc).
const (
	OpRaiseViolation = "RAISE_VIOLATION"
	OpAddExecutor    = "ADD_EXECUTOR"
	OpRemoveExecutor = "REMOVE_EXECUTOR"
	OpBalanceLoad    = "BALANCE_LOAD"
)

// Violation tags set through setData by the standard rule files; the parent
// manager dispatches on them (Fig. 4's notEnough / tooMuch events).
const (
	TagNotEnoughTasks = "notEnoughTasks_VIOL"
	TagTooMuchTasks   = "tooMuchTasks_VIOL"
	TagAddWorkers     = "FARM_ADD_WORKERS"
)

// Bean type names published by the ABC monitor each control cycle.
const (
	BeanArrivalRate   = "ArrivalRateBean"
	BeanDepartureRate = "DepartureRateBean"
	BeanNumWorker     = "NumWorkerBean"
	BeanQueueVariance = "QueueVarianceBean" // the paper's Fig. 5 spells it "QuequeVarianceBean"
)

// FarmRuleSource is the AM_F rule file of Fig. 5, reproduced in this
// engine's DRL dialect (the only edits: the QueueVarianceBean spelling and
// the constant-table prefixes, which resolve identically).
const FarmRuleSource = `
rule "CheckInterArrivalRateLow"
  when
    $arrivalBean : ArrivalRateBean ( value < ManagersConstants.FARM_LOW_PERF_LEVEL )
  then
    $arrivalBean.setData(ManagersConstants.notEnoughTasks_VIOL);
    $arrivalBean.fireOperation(ManagerOperation.RAISE_VIOLATION);
end

rule "CheckInterArrivalRateHigh"
  when
    $arrivalBean : ArrivalRateBean( value > ManagersConstants.FARM_HIGH_PERF_LEVEL )
  then
    $arrivalBean.setData(ManagersConstants.tooMuchTasks_VIOL);
    $arrivalBean.fireOperation(ManagerOperation.RAISE_VIOLATION);
end

rule "CheckRateLow"
  when
    $departureBean : DepartureRateBean( value < ManagersConstants.FARM_LOW_PERF_LEVEL )
    $arrivalBean : ArrivalRateBean( value >= ManagersConstants.FARM_LOW_PERF_LEVEL )
    $parDegree : NumWorkerBean( value <= ManagersConstants.FARM_MAX_NUM_WORKERS )
  then
    $departureBean.setData(ManagersConstants.FARM_ADD_WORKERS);
    $departureBean.fireOperation(ManagerOperation.ADD_EXECUTOR);
    $departureBean.fireOperation(ManagerOperation.BALANCE_LOAD);
end

rule "CheckRateHigh"
  when
    $departureBean : DepartureRateBean( value > ManagersConstants.FARM_HIGH_PERF_LEVEL )
    $parDegree : NumWorkerBean( value > ManagersConstants.FARM_MIN_NUM_WORKERS )
  then
    $departureBean.fireOperation(ManagerOperation.REMOVE_EXECUTOR);
    $departureBean.fireOperation(ManagerOperation.BALANCE_LOAD);
end

rule "CheckLoadBalance"
  when
    $VarianceBean : QueueVarianceBean ( value > ManagersConstants.FARM_MAX_UNBALANCE )
  then
    $VarianceBean.fireOperation(ManagerOperation.BALANCE_LOAD);
end
`

// FarmConstants builds the ManagersConstants table parameterizing the farm
// rule file from the farm's throughput contract [lo, hi] and its structural
// limits.
func FarmConstants(lo, hi float64, minWorkers, maxWorkers int, maxUnbalance float64) Constants {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("rules: bad contract bounds [%v,%v]", lo, hi))
	}
	if minWorkers < 1 || maxWorkers < minWorkers {
		panic(fmt.Sprintf("rules: bad worker bounds [%d,%d]", minWorkers, maxWorkers))
	}
	return Constants{
		"FARM_LOW_PERF_LEVEL":  Num(lo),
		"FARM_HIGH_PERF_LEVEL": Num(hi),
		"FARM_MIN_NUM_WORKERS": Num(float64(minWorkers)),
		"FARM_MAX_NUM_WORKERS": Num(float64(maxWorkers)),
		"FARM_MAX_UNBALANCE":   Num(maxUnbalance),
		"notEnoughTasks_VIOL":  Str(TagNotEnoughTasks),
		"tooMuchTasks_VIOL":    Str(TagTooMuchTasks),
		"FARM_ADD_WORKERS":     Str(TagAddWorkers),
	}
}

// NewFarmEngine parses FarmRuleSource with the given constants. It panics
// only if the embedded source is broken, which the tests rule out.
func NewFarmEngine(consts Constants) *Engine {
	return New(MustParse(FarmRuleSource), consts)
}

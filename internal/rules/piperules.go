package rules

// The paper stores *all* manager policies as JBoss rules (§4.2). Besides
// the farm rule file of Fig. 5, this repository also ships the application
// (pipeline) manager's reaction policy in rule form: child violations are
// published into working memory as ViolationBeans and the rules below map
// them onto the incRate / decRate / endStream reactions of Fig. 4. The
// rule-driven pipeline manager (internal/manager, rulepipe.go) behaves
// identically to the hard-coded PipelineCoordinator policy — a parity the
// tests assert.

// Bean and field names used by the pipeline rule file.
const (
	BeanViolation = "ViolationBean"
	// ViolationBean fields: "tag" (string), "arrival" (reporter's arrival
	// rate), "done" (1 when the reporter saw the stream end).
)

// Operations fired by the pipeline rule file. Their names double as the
// trace event kinds so rules-driven runs log the same Fig. 4 events.
const (
	OpIncRate   = "incRate"
	OpDecRate   = "decRate"
	OpEndStream = "endStream"
)

// PipeRuleSource is the application-manager policy of the Fig. 4
// experiment in rule form.
const PipeRuleSource = `
rule "ReactEndOfStream" salience 10
  when
    $v : ViolationBean( tag == "notEnoughTasks_VIOL" && done == 1 )
  then
    $v.fireOperation(endStream);
end

rule "ReactNotEnough"
  when
    $v : ViolationBean( tag == "notEnoughTasks_VIOL" && done == 0 )
  then
    $v.fireOperation(incRate);
end

rule "ReactTooMuch"
  when
    $v : ViolationBean( tag == "tooMuchTasks_VIOL" )
  then
    $v.fireOperation(decRate);
end
`

// NewPipeEngine parses PipeRuleSource. The constant table binds the
// violation tags the farm rules raise.
func NewPipeEngine() *Engine {
	return New(MustParse(PipeRuleSource), Constants{
		"notEnoughTasks_VIOL": Str(TagNotEnoughTasks),
		"tooMuchTasks_VIOL":   Str(TagTooMuchTasks),
	})
}

package rules

import (
	"strings"
	"testing"
)

// explainBeans builds the four farm sensors for an explain cycle.
func explainBeans(arrival, departure, workers, variance float64) []Bean {
	return []Bean{
		NewBean(BeanArrivalRate, Num(arrival)),
		NewBean(BeanDepartureRate, Num(departure)),
		NewBean(BeanNumWorker, Num(workers)),
		NewBean(BeanQueueVariance, Num(variance)),
	}
}

func TestCycleExplainVerdicts(t *testing.T) {
	eng := NewFarmEngine(FarmConstants(0.6, 1.2, 1, 8, 4))
	// Arrival below the low level: only CheckInterArrivalRateLow fires.
	var ops []string
	eff := EffectorFunc(func(op string, act *Activation) error {
		ops = append(ops, op)
		return nil
	})
	fired, verdicts, err := eng.CycleExplain(explainBeans(0.3, 0.7, 2, 1), eff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0].Rule.Name != "CheckInterArrivalRateLow" {
		t.Fatalf("fired = %v, want exactly CheckInterArrivalRateLow", fired)
	}
	if len(ops) != 1 || ops[0] != OpRaiseViolation {
		t.Fatalf("ops = %v, want [%s]", ops, OpRaiseViolation)
	}
	if len(verdicts) != len(eng.Rules()) {
		t.Fatalf("got %d verdicts for %d rules", len(verdicts), len(eng.Rules()))
	}
	byName := map[string]RuleVerdict{}
	for _, v := range verdicts {
		byName[v.Rule] = v
	}
	if !byName["CheckInterArrivalRateLow"].Fired {
		t.Errorf("CheckInterArrivalRateLow not marked fired: %+v", byName["CheckInterArrivalRateLow"])
	}
	if v := byName["CheckInterArrivalRateLow"]; v.FailingPattern != "" {
		t.Errorf("fired rule carries failing pattern %q", v.FailingPattern)
	}
	// CheckRateLow needs arrival >= low level; that is the failing pattern
	// (departure 0.7 satisfies the first pattern at contract low 0.6? no:
	// 0.7 > 0.6, so the *first* pattern fails).
	v := byName["CheckRateLow"]
	if v.Fired {
		t.Fatalf("CheckRateLow unexpectedly fired")
	}
	if !strings.Contains(v.FailingPattern, BeanDepartureRate) {
		t.Errorf("CheckRateLow failing pattern = %q, want it to name %s", v.FailingPattern, BeanDepartureRate)
	}
	if !strings.Contains(v.FailingPattern, "value") {
		t.Errorf("failing pattern %q does not render the predicate", v.FailingPattern)
	}
}

func TestCycleExplainFailingPatternOrder(t *testing.T) {
	eng := NewFarmEngine(FarmConstants(0.6, 1.2, 1, 8, 4))
	// Departure below low level but arrival also below: CheckRateLow's
	// second pattern (arrival >= low) is the first unsatisfiable one.
	_, verdicts, err := eng.CycleExplain(explainBeans(0.3, 0.2, 2, 1), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Rule != "CheckRateLow" {
			continue
		}
		if v.Fired {
			t.Fatalf("CheckRateLow fired with arrival below the low level")
		}
		if !strings.Contains(v.FailingPattern, BeanArrivalRate) {
			t.Fatalf("failing pattern = %q, want the arrival pattern", v.FailingPattern)
		}
		return
	}
	t.Fatal("no verdict for CheckRateLow")
}

func TestCycleExplainFiringLimit(t *testing.T) {
	eng := NewFarmEngine(FarmConstants(0.6, 1.2, 1, 8, 4))
	// Unbalanced queues and too-high arrival: at least two rules fireable.
	fired, verdicts, err := eng.CycleExplain(explainBeans(2.0, 0.8, 2, 9), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("fired %d rules, want 1 (limit)", len(fired))
	}
	limited := 0
	for _, v := range verdicts {
		if v.FailingPattern == "firing limit reached" {
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("no verdict reports the firing limit")
	}
}

func TestCycleExplainMatchesCycle(t *testing.T) {
	eng := NewFarmEngine(FarmConstants(0.6, 1.2, 1, 8, 4))
	for _, beans := range [][]Bean{
		explainBeans(0.3, 0.7, 2, 1),
		explainBeans(2.0, 0.8, 2, 9),
		explainBeans(0.8, 0.7, 2, 1),
	} {
		plain, err := eng.Cycle(beans, nil)
		if err != nil {
			t.Fatal(err)
		}
		explained, _, err := eng.CycleExplain(beans, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(explained) {
			t.Fatalf("Cycle fired %d rules, CycleExplain %d", len(plain), len(explained))
		}
		for i := range plain {
			if plain[i].Rule.Name != explained[i].Rule.Name {
				t.Fatalf("firing order diverges: %s vs %s", plain[i].Rule.Name, explained[i].Rule.Name)
			}
		}
	}
}

// Package rules implements the precondition–action rule engine that drives
// the autonomic control cycle of the behavioural-skeleton managers. It is a
// from-scratch replacement for the JBoss rule engine used by the paper: a
// small DRL-like language (lexer + recursive-descent parser, see Fig. 5 of
// the paper for the concrete syntax it accepts), a working memory of typed
// beans fed by the ABC sensors, salience-ordered fireable-rule selection,
// and action dispatch onto an Effector implemented by the ABC actuators.
package rules

import (
	"fmt"
	"strconv"
)

// Kind discriminates Value variants.
type Kind int

// Value kinds.
const (
	KindNum Kind = iota
	KindStr
	KindBool
)

// Value is the dynamic value type flowing through rule expressions: a
// number, a string or a boolean.
type Value struct {
	kind Kind
	num  float64
	str  string
	b    bool
}

// Num returns a numeric value.
func Num(v float64) Value { return Value{kind: KindNum, num: v} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindStr, str: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind returns the variant of the value.
func (v Value) Kind() Kind { return v.kind }

// AsNum returns the numeric content; booleans convert to 0/1 and strings
// fail.
func (v Value) AsNum() (float64, error) {
	switch v.kind {
	case KindNum:
		return v.num, nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("rules: value %v is not numeric", v)
	}
}

// AsBool returns the boolean content; numbers are true iff non-zero and
// strings fail.
func (v Value) AsBool() (bool, error) {
	switch v.kind {
	case KindBool:
		return v.b, nil
	case KindNum:
		return v.num != 0, nil
	default:
		return false, fmt.Errorf("rules: value %v is not boolean", v)
	}
}

// AsStr returns the string content of a string value; other kinds render
// via String.
func (v Value) AsStr() string {
	if v.kind == KindStr {
		return v.str
	}
	return v.String()
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.kind {
	case KindNum:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindStr:
		return v.str
	default:
		return strconv.FormatBool(v.b)
	}
}

// Equal reports deep value equality (numbers compare to booleans via 0/1).
func (v Value) Equal(o Value) bool {
	if v.kind == KindStr || o.kind == KindStr {
		return v.kind == o.kind && v.str == o.str
	}
	a, _ := v.AsNum()
	b, _ := o.AsNum()
	return a == b
}

// Bean is one fact in working memory. The ABC sensors publish beans like
// ArrivalRateBean or DepartureRateBean every control-loop cycle.
type Bean interface {
	// BeanType is the type name matched by rule patterns, e.g.
	// "ArrivalRateBean".
	BeanType() string
	// Field returns the named field's value. The conventional primary
	// field is "value".
	Field(name string) (Value, bool)
}

// SimpleBean is a map-backed Bean, convenient for sensors and tests.
type SimpleBean struct {
	Type   string
	Fields map[string]Value
}

// NewBean returns a SimpleBean of the given type with a single "value"
// field.
func NewBean(typ string, value Value) *SimpleBean {
	return &SimpleBean{Type: typ, Fields: map[string]Value{"value": value}}
}

// BeanType implements Bean.
func (b *SimpleBean) BeanType() string { return b.Type }

// Field implements Bean.
func (b *SimpleBean) Field(name string) (Value, bool) {
	v, ok := b.Fields[name]
	return v, ok
}

// Set stores a field and returns the bean for chaining.
func (b *SimpleBean) Set(name string, v Value) *SimpleBean {
	if b.Fields == nil {
		b.Fields = map[string]Value{}
	}
	b.Fields[name] = v
	return b
}

// Constants resolves the symbolic names appearing in rule sources (the
// paper's ManagersConstants.* and ManagerOperation.*). Lookup tries the
// fully qualified name first, then the last path segment.
type Constants map[string]Value

// Lookup resolves name, returning the value and whether it was found.
func (c Constants) Lookup(name string) (Value, bool) {
	if v, ok := c[name]; ok {
		return v, true
	}
	if i := lastDot(name); i >= 0 {
		if v, ok := c[name[i+1:]]; ok {
			return v, true
		}
	}
	return Value{}, false
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

package rules

import (
	"fmt"
	"strconv"
)

// Parse parses rule source text into a RuleSet. The accepted grammar is the
// subset of JBoss DRL used in Fig. 5 of the paper:
//
//	ruleset  := rule*
//	rule     := "rule" STRING ["salience" NUMBER] "when" pattern* "then"
//	            action* "end"
//	pattern  := ["$" IDENT ":"] IDENT "(" [expr] ")"
//	action   := ("$" IDENT "." IDENT | IDENT) "(" [expr ("," expr)*] ")" [";"]
//	expr     := or-expression over <, <=, >, >=, ==, !=, &&, ||, !, + - * /,
//	            numbers, strings, true/false, dotted identifiers and
//	            $var.field references
func Parse(src string) (*RuleSet, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	rs := &RuleSet{}
	for !p.atEOF() {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rs.Rules = append(rs.Rules, r)
	}
	if len(rs.Rules) == 0 {
		return nil, &SyntaxError{Line: 1, Msg: "no rules in source"}
	}
	return rs, nil
}

// MustParse is Parse that panics on error, for statically known sources.
func MustParse(src string) *RuleSet {
	rs, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return rs
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEOF() {
		line := 1
		if len(p.toks) > 0 {
			line = p.toks[len(p.toks)-1].line
		}
		return token{kind: tokEOF, line: line}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return &SyntaxError{Line: t.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, p.errf(t, "expected %s, found %s", kind, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return p.errf(t, "expected %q, found %s", kw, t)
	}
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) parseRule() (*Rule, error) {
	start := p.peek()
	if err := p.expectKeyword("rule"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	r := &Rule{Name: name.text, Line: start.line}
	if p.peekKeyword("salience") {
		p.next()
		neg := false
		if t := p.peek(); t.kind == tokOp && t.text == "-" {
			neg = true
			p.next()
		}
		num, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(num.text)
		if err != nil {
			return nil, p.errf(num, "salience must be an integer: %v", err)
		}
		if neg {
			n = -n
		}
		r.Salience = n
	}
	if err := p.expectKeyword("when"); err != nil {
		return nil, err
	}
	for !p.peekKeyword("then") {
		if p.atEOF() {
			return nil, p.errf(p.peek(), "rule %q: missing 'then'", r.Name)
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		r.Patterns = append(r.Patterns, pat)
	}
	p.next() // consume "then"
	for !p.peekKeyword("end") {
		if p.atEOF() {
			return nil, p.errf(p.peek(), "rule %q: missing 'end'", r.Name)
		}
		act, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		r.Actions = append(r.Actions, act)
	}
	p.next() // consume "end"
	if len(r.Actions) == 0 {
		return nil, p.errf(start, "rule %q has no actions", r.Name)
	}
	return r, nil
}

func (p *parser) parsePattern() (*Pattern, error) {
	pat := &Pattern{}
	if p.peek().kind == tokVar {
		pat.Var = p.next().text
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
	}
	typ, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	pat.Type = typ.text
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.peek().kind != tokRParen {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		pat.Cond = cond
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return pat, nil
}

func (p *parser) parseAction() (*Action, error) {
	act := &Action{Line: p.peek().line}
	switch t := p.next(); t.kind {
	case tokVar:
		act.Var = t.text
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		m, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		act.Method = m.text
	case tokIdent:
		act.Method = t.text
	default:
		return nil, p.errf(t, "expected action, found %s", t)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.peek().kind != tokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			act.Args = append(act.Args, arg)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.peek().kind == tokSemi {
		p.next()
	}
	return act, nil
}

// Expression parsing: precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "&&" {
		p.next()
		r, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		l = binary{op: "&&", l: l, r: r}
	}
	return l, nil
}

func isRelOp(s string) bool {
	switch s {
	case "<", "<=", ">", ">=", "==", "!=":
		return true
	}
	return false
}

func (p *parser) parseRel() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp && isRelOp(t.text) {
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return binary{op: t.text, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = binary{op: t.text, l: l, r: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binary{op: t.text, l: l, r: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.kind == tokOp && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{op: t.text, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q: %v", t.text, err)
		}
		return numLit{v: v}, nil
	case tokString:
		return strLit{s: t.text}, nil
	case tokVar:
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		f, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return varRef{name: t.text, field: f.text}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return boolLit{b: true}, nil
		case "false":
			return boolLit{b: false}, nil
		}
		path := []string{t.text}
		for p.peek().kind == tokDot {
			p.next()
			seg, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			path = append(path, seg.text)
		}
		return identRef{path: path}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t, "expected expression, found %s", t)
}

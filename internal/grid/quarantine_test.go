package grid

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
)

func twoNodeRM() (*ResourceManager, *Node, *Node) {
	dom := Domain{Name: "c", Trusted: true}
	a := NewNode("a", dom, 1, 1.0)
	b := NewNode("b", dom, 1, 1.0)
	return NewResourceManager(a, b), a, b
}

func TestQuarantineExcludesNodeFromRecruitment(t *testing.T) {
	rm, _, _ := twoNodeRM()
	if !rm.Quarantine("a", time.Hour) {
		t.Fatal("Quarantine(a) = false for a known node")
	}
	if rm.Quarantine("nope", time.Hour) {
		t.Fatal("Quarantine accepted an unknown node")
	}
	got := rm.Quarantined()
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("Quarantined() = %v, want [a]", got)
	}
	// Both cores free, but only b is recruitable.
	n1, err := rm.Recruit(Request{})
	if err != nil {
		t.Fatal(err)
	}
	if n1.ID != "b" {
		t.Fatalf("recruited %s, want the non-quarantined b", n1.ID)
	}
	if _, err := rm.Recruit(Request{}); !errors.Is(err, ErrExhausted) {
		t.Fatalf("recruit with only a quarantined node free: err = %v, want ErrExhausted", err)
	}
	if free := rm.CapacityFree(Request{}); free != 0 {
		t.Fatalf("CapacityFree counts quarantined cores: %d", free)
	}
}

func TestQuarantineCooldownExpires(t *testing.T) {
	rm, _, _ := twoNodeRM()
	clock := simclock.NewManual(time.Unix(0, 0))
	rm.SetClock(clock)
	rm.Quarantine("a", 10*time.Second)
	rm.Quarantine("b", 10*time.Second)
	if _, err := rm.Recruit(Request{}); !errors.Is(err, ErrExhausted) {
		t.Fatalf("recruit during quarantine: err = %v, want ErrExhausted", err)
	}
	clock.Advance(11 * time.Second)
	if _, err := rm.Recruit(Request{}); err != nil {
		t.Fatalf("recruit after cooldown: %v", err)
	}
	if got := rm.Quarantined(); len(got) != 0 {
		t.Fatalf("expired quarantines still listed: %v", got)
	}
}

func TestQuarantineExtendsWindow(t *testing.T) {
	rm, _, _ := twoNodeRM()
	clock := simclock.NewManual(time.Unix(0, 0))
	rm.SetClock(clock)
	rm.Quarantine("a", 10*time.Second)
	clock.Advance(5 * time.Second)
	rm.Quarantine("a", 10*time.Second) // re-trip: window restarts
	clock.Advance(6 * time.Second)     // 11s after first trip, 6s after second
	if got := rm.Quarantined(); len(got) != 1 {
		t.Fatalf("re-tripped quarantine expired early: %v", got)
	}
}

func TestQuarantineRearmNeverShrinksWindow(t *testing.T) {
	rm, _, _ := twoNodeRM()
	clock := simclock.NewManual(time.Unix(0, 0))
	rm.SetClock(clock)
	rm.Quarantine("a", 20*time.Second)
	clock.Advance(5 * time.Second)
	// Re-trip with a shorter cooldown: the new deadline (now+2s) lies
	// inside the existing window (now+15s), so the longer window must win —
	// a flapping node cannot talk its way out of quarantine early.
	rm.Quarantine("a", 2*time.Second)
	clock.Advance(3 * time.Second) // the short window would have expired
	if got := rm.Quarantined(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("shorter re-arm shrank the quarantine window: %v", got)
	}
	clock.Advance(13 * time.Second) // 21s after the first trip
	if got := rm.Quarantined(); len(got) != 0 {
		t.Fatalf("quarantine outlived its original window: %v", got)
	}
}

func TestRecruitFaultHook(t *testing.T) {
	rm, _, _ := twoNodeRM()
	boom := errors.New("injected")
	rm.SetRecruitFault(func(Request) error { return boom })
	if _, err := rm.Recruit(Request{}); !errors.Is(err, boom) {
		t.Fatalf("recruit with veto hook: err = %v, want injected error", err)
	}
	rm.SetRecruitFault(nil)
	if _, err := rm.Recruit(Request{}); err != nil {
		t.Fatalf("recruit after clearing hook: %v", err)
	}
}

// Package grid simulates the execution environment of the paper's
// experiments: processing nodes with cores, relative speeds and injectable
// external load, grouped into IP domains that may be trusted or untrusted
// (the paper's untrusted_ip_domain_A), interconnected by links that are
// either private or public, plus a resource manager from which autonomic
// managers recruit new resources when growing a farm.
//
// The simulation is intentionally behavioural rather than cycle-accurate:
// what the autonomic control loops observe are service times and domain
// memberships, and those are what this package models.
package grid

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// Domain is an IP domain of the simulated grid.
type Domain struct {
	Name    string
	Trusted bool // false models untrusted_ip_domain_A-like domains
}

// Node is one processing element. A Node has a fixed number of core slots;
// workers allocate slots and, when a node is oversubscribed or externally
// loaded, the effective speed seen by each occupant degrades accordingly.
type Node struct {
	ID     string
	Domain Domain
	Cores  int
	Speed  float64 // relative speed; 1.0 is the reference core

	// Labels are free-form placement attributes ("zone": "a", "gpu":
	// "none"). Remote workerd processes advertise them in the dispatch
	// handshake and recruitment requests can constrain on them, so a
	// deployment planner can target specific nodes. Set before the node is
	// shared; never mutated afterwards.
	Labels map[string]string

	mu       sync.Mutex
	busy     int     // allocated core slots
	external float64 // externally injected load in [0,1)
}

// Label returns the node's value for the given label key ("" when unset).
func (n *Node) Label(key string) string { return n.Labels[key] }

// HasLabels reports whether every key/value pair of want is present in the
// node's labels (subset match; an empty want matches every node).
func (n *Node) HasLabels(want map[string]string) bool {
	for k, v := range want {
		if n.Labels[k] != v {
			return false
		}
	}
	return true
}

// NewNode returns a node with the given identity and capacity. Speed must
// be positive and cores at least 1.
func NewNode(id string, dom Domain, cores int, speed float64) *Node {
	if cores < 1 {
		panic("grid: node needs at least one core")
	}
	if speed <= 0 {
		panic("grid: node speed must be positive")
	}
	return &Node{ID: id, Domain: dom, Cores: cores, Speed: speed}
}

// Allocate reserves one core slot. It never fails: oversubscription is
// allowed but degrades EffectiveSpeed, mirroring what happens on a real
// multicore when more activities than cores are mapped onto it.
func (n *Node) Allocate() {
	n.mu.Lock()
	n.busy++
	n.mu.Unlock()
}

// Release frees one core slot. Releasing an idle node is a bug.
func (n *Node) Release() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.busy == 0 {
		panic(fmt.Sprintf("grid: release of idle node %s", n.ID))
	}
	n.busy--
}

// Busy returns the number of allocated core slots.
func (n *Node) Busy() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.busy
}

// SetExternalLoad injects external load l in [0,1): the fraction of the
// node's capacity consumed by computations outside the application. This is
// how the EXT-LOAD experiment models "additional (external) load upon the
// cores".
func (n *Node) SetExternalLoad(l float64) {
	if l < 0 || l >= 1 {
		panic(fmt.Sprintf("grid: external load %v out of [0,1)", l))
	}
	n.mu.Lock()
	n.external = l
	n.mu.Unlock()
}

// ExternalLoad returns the currently injected external load.
func (n *Node) ExternalLoad() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.external
}

// EffectiveSpeed returns the speed currently seen by one occupant of the
// node: the nominal speed, shared among occupants once the core slots are
// oversubscribed, and scaled down by external load.
func (n *Node) EffectiveSpeed() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	speed := n.Speed * (1 - n.external)
	if n.busy > n.Cores {
		speed *= float64(n.Cores) / float64(n.busy)
	}
	return speed
}

// ServiceTime converts a nominal work amount (duration on the reference
// core) into the wall time it takes on this node right now.
func (n *Node) ServiceTime(nominal time.Duration) time.Duration {
	s := n.EffectiveSpeed()
	if s <= 0 {
		s = 1e-6
	}
	return time.Duration(float64(nominal) / s)
}

// Link describes the network connection between two domains.
type Link struct {
	Latency time.Duration
	Private bool // false: traffic is observable, c_sec requires encryption
}

// Network stores pairwise domain links. Missing entries default to a
// public, zero-latency link (the conservative assumption for security).
type Network struct {
	mu    sync.Mutex
	links map[string]Link
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{links: map[string]Link{}} }

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// SetLink installs the link between domains a and b (order-insensitive).
func (nw *Network) SetLink(a, b string, l Link) {
	nw.mu.Lock()
	nw.links[linkKey(a, b)] = l
	nw.mu.Unlock()
}

// LinkBetween returns the link between two domains. Intra-domain traffic is
// private with zero latency unless explicitly overridden.
func (nw *Network) LinkBetween(a, b string) Link {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if l, ok := nw.links[linkKey(a, b)]; ok {
		return l
	}
	if a == b {
		return Link{Private: true}
	}
	return Link{Private: false}
}

// ErrExhausted is returned by Recruit when no node matches the request.
var ErrExhausted = errors.New("grid: no matching resource available")

// Request expresses the constraints of a recruitment, as used by the
// autonomic managers when adding farm workers.
type Request struct {
	TrustedOnly bool // refuse nodes in untrusted domains
	MinSpeed    float64
	// MaxExternalLoad, when positive, refuses nodes whose injected
	// external load exceeds it (the migration manager uses it to avoid
	// moving a worker onto another overloaded node).
	MaxExternalLoad float64
	// Labels constrains recruitment to nodes carrying every listed
	// key/value pair (subset match). Nil imposes no label constraint.
	Labels map[string]string
}

// matches reports whether node n satisfies the request.
func (r Request) matches(n *Node) bool {
	if r.TrustedOnly && !n.Domain.Trusted {
		return false
	}
	if !n.HasLabels(r.Labels) {
		return false
	}
	if r.MinSpeed > 0 && n.Speed < r.MinSpeed {
		return false
	}
	if r.MaxExternalLoad > 0 && n.ExternalLoad() > r.MaxExternalLoad {
		return false
	}
	return true
}

// ResourceManager hands out core slots from a pool of nodes. Recruitment
// policy: free capacity first, trusted domains before untrusted ones, then
// faster nodes first, then lexicographic node ID for determinism.
//
// Nodes can be quarantined for a cooldown window: a quarantined node is
// invisible to Recruit and CapacityFree until the window expires. The fault
// manager uses this as a circuit breaker against nodes whose workers keep
// dying.
type ResourceManager struct {
	mu          sync.Mutex
	nodes       []*Node
	clock       simclock.Clock
	quarantined map[string]time.Time // node ID -> quarantine expiry

	// recruitFault, when non-nil, is consulted at the top of Recruit and
	// may veto the recruitment with an error. It is the chaos plane's
	// injection point for flaky or exhausted recruitment; the pointer is
	// atomic so the hook costs one predictable nil check when unused.
	recruitFault atomic.Pointer[func(Request) error]
}

// NewResourceManager returns a manager over the given pool. The pool slice
// is not copied; callers should not mutate it afterwards.
func NewResourceManager(nodes ...*Node) *ResourceManager {
	return &ResourceManager{nodes: nodes, quarantined: map[string]time.Time{}}
}

// SetClock installs the clock used to expire quarantines (default: real
// time). The fault manager shares its simulation clock this way.
func (rm *ResourceManager) SetClock(c simclock.Clock) {
	rm.mu.Lock()
	rm.clock = c
	rm.mu.Unlock()
}

func (rm *ResourceManager) nowLocked() time.Time {
	if rm.clock != nil {
		return rm.clock.Now()
	}
	return time.Now()
}

// SetRecruitFault installs (or, with nil, removes) a hook consulted before
// every recruitment; a non-nil error from the hook fails the Recruit call.
func (rm *ResourceManager) SetRecruitFault(fn func(Request) error) {
	if fn == nil {
		rm.recruitFault.Store(nil)
		return
	}
	rm.recruitFault.Store(&fn)
}

// Quarantine removes the node from recruitment for the given cooldown. It
// reports whether the node is in the pool. A second quarantine extends the
// window if it ends later than the current one.
func (rm *ResourceManager) Quarantine(nodeID string, cooldown time.Duration) bool {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	found := false
	for _, n := range rm.nodes {
		if n.ID == nodeID {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	until := rm.nowLocked().Add(cooldown)
	if cur, ok := rm.quarantined[nodeID]; !ok || until.After(cur) {
		rm.quarantined[nodeID] = until
	}
	return true
}

// Quarantined returns the IDs of the nodes currently under quarantine, in
// lexicographic order.
func (rm *ResourceManager) Quarantined() []string {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	now := rm.nowLocked()
	var out []string
	for id, until := range rm.quarantined {
		if now.Before(until) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// quarantinedLocked reports whether n is under quarantine, lazily dropping
// expired entries.
func (rm *ResourceManager) quarantinedLocked(n *Node, now time.Time) bool {
	until, ok := rm.quarantined[n.ID]
	if !ok {
		return false
	}
	if now.Before(until) {
		return true
	}
	delete(rm.quarantined, n.ID)
	return false
}

// Nodes returns the pool in the manager's preference order.
func (rm *ResourceManager) Nodes() []*Node {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]*Node, len(rm.nodes))
	copy(out, rm.nodes)
	rm.rankLocked(out)
	return out
}

func (rm *ResourceManager) rankLocked(ns []*Node) {
	sort.SliceStable(ns, func(i, j int) bool {
		a, b := ns[i], ns[j]
		aFree, bFree := a.Busy() < a.Cores, b.Busy() < b.Cores
		if aFree != bFree {
			return aFree
		}
		if a.Domain.Trusted != b.Domain.Trusted {
			return a.Domain.Trusted
		}
		if a.Speed != b.Speed {
			return a.Speed > b.Speed
		}
		return a.ID < b.ID
	})
}

// Recruit allocates one core slot on the best node satisfying req and
// returns that node. The caller owns the slot and must eventually call
// Node.Release.
func (rm *ResourceManager) Recruit(req Request) (*Node, error) {
	if fp := rm.recruitFault.Load(); fp != nil {
		if err := (*fp)(req); err != nil {
			return nil, err
		}
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	now := rm.nowLocked()
	cand := make([]*Node, 0, len(rm.nodes))
	for _, n := range rm.nodes {
		if rm.quarantinedLocked(n, now) {
			continue
		}
		if req.matches(n) {
			cand = append(cand, n)
		}
	}
	if len(cand) == 0 {
		return nil, ErrExhausted
	}
	rm.rankLocked(cand)
	// Prefer a node with a free core; otherwise oversubscribe the best one
	// only if every candidate is full.
	n := cand[0]
	if n.Busy() >= n.Cores {
		return nil, ErrExhausted
	}
	n.Allocate()
	return n, nil
}

// CapacityFree returns the number of unallocated core slots matching req.
// Quarantined nodes contribute nothing, so the managers' capacity sensing
// agrees with what Recruit would actually hand out.
func (rm *ResourceManager) CapacityFree(req Request) int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	now := rm.nowLocked()
	total := 0
	for _, n := range rm.nodes {
		if rm.quarantinedLocked(n, now) || !req.matches(n) {
			continue
		}
		if free := n.Cores - n.Busy(); free > 0 {
			total += free
		}
	}
	return total
}

// CoresInUse returns the total number of allocated slots in the pool — the
// "resources used" curve of Fig. 4 (bottom graph).
func (rm *ResourceManager) CoresInUse() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	total := 0
	for _, n := range rm.nodes {
		total += n.Busy()
	}
	return total
}

// Platform bundles the grid pieces used by an experiment.
type Platform struct {
	Domains []Domain
	Network *Network
	RM      *ResourceManager
}

// NewSMP builds the 8-core dual quad-core SMP machine the paper ran its
// Fig. 4 experiment on: a single trusted domain, one node with eight
// reference-speed cores.
func NewSMP(cores int) *Platform {
	if cores <= 0 {
		cores = 8
	}
	dom := Domain{Name: "smp.local", Trusted: true}
	node := NewNode("smp0", dom, cores, 1.0)
	return &Platform{
		Domains: []Domain{dom},
		Network: NewNetwork(),
		RM:      NewResourceManager(node),
	}
}

// NewTwoDomainGrid builds the §3.2 scenario: trustedCores spread over
// single-core nodes in a trusted domain plus untrustedCores single-core
// nodes in untrusted_ip_domain_A, connected by a public link.
func NewTwoDomainGrid(trustedCores, untrustedCores int) *Platform {
	trusted := Domain{Name: "trusted.local", Trusted: true}
	untrusted := Domain{Name: "untrusted_ip_domain_A", Trusted: false}
	var nodes []*Node
	for i := 0; i < trustedCores; i++ {
		nodes = append(nodes, NewNode(fmt.Sprintf("t%02d", i), trusted, 1, 1.0))
	}
	for i := 0; i < untrustedCores; i++ {
		nodes = append(nodes, NewNode(fmt.Sprintf("u%02d", i), untrusted, 1, 1.0))
	}
	nw := NewNetwork()
	nw.SetLink(trusted.Name, untrusted.Name, Link{Latency: 2 * time.Millisecond, Private: false})
	nw.SetLink(trusted.Name, trusted.Name, Link{Private: true})
	return &Platform{
		Domains: []Domain{trusted, untrusted},
		Network: nw,
		RM:      NewResourceManager(nodes...),
	}
}

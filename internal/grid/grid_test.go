package grid

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNodeValidation(t *testing.T) {
	dom := Domain{Name: "d", Trusted: true}
	for _, tc := range []struct {
		cores int
		speed float64
	}{{0, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("cores=%d speed=%v: expected panic", tc.cores, tc.speed)
				}
			}()
			NewNode("n", dom, tc.cores, tc.speed)
		}()
	}
}

func TestNodeAllocateRelease(t *testing.T) {
	n := NewNode("n", Domain{Name: "d"}, 2, 1.0)
	n.Allocate()
	n.Allocate()
	if n.Busy() != 2 {
		t.Fatalf("Busy = %d", n.Busy())
	}
	n.Release()
	if n.Busy() != 1 {
		t.Fatalf("Busy = %d", n.Busy())
	}
}

func TestNodeReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNode("n", Domain{}, 1, 1).Release()
}

func TestEffectiveSpeedOversubscription(t *testing.T) {
	n := NewNode("n", Domain{}, 2, 1.0)
	n.Allocate()
	n.Allocate()
	if got := n.EffectiveSpeed(); got != 1.0 {
		t.Fatalf("at capacity speed = %v", got)
	}
	n.Allocate() // 3 occupants on 2 cores
	if got := n.EffectiveSpeed(); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("oversubscribed speed = %v, want 2/3", got)
	}
}

func TestExternalLoadSlowsNode(t *testing.T) {
	n := NewNode("n", Domain{}, 1, 1.0)
	base := n.ServiceTime(time.Second)
	n.SetExternalLoad(0.5)
	if n.ExternalLoad() != 0.5 {
		t.Fatalf("ExternalLoad = %v", n.ExternalLoad())
	}
	loaded := n.ServiceTime(time.Second)
	if loaded != 2*base {
		t.Fatalf("service time under 50%% load = %v, want %v", loaded, 2*base)
	}
}

func TestExternalLoadBounds(t *testing.T) {
	n := NewNode("n", Domain{}, 1, 1.0)
	for _, l := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("load %v: expected panic", l)
				}
			}()
			n.SetExternalLoad(l)
		}()
	}
}

func TestNetworkDefaults(t *testing.T) {
	nw := NewNetwork()
	if !nw.LinkBetween("a", "a").Private {
		t.Fatal("intra-domain default must be private")
	}
	if nw.LinkBetween("a", "b").Private {
		t.Fatal("inter-domain default must be public")
	}
	nw.SetLink("a", "b", Link{Private: true, Latency: time.Millisecond})
	if l := nw.LinkBetween("b", "a"); !l.Private || l.Latency != time.Millisecond {
		t.Fatalf("link lookup not symmetric: %+v", l)
	}
}

func TestRecruitPrefersTrustedThenFast(t *testing.T) {
	trusted := Domain{Name: "t", Trusted: true}
	untrusted := Domain{Name: "u", Trusted: false}
	slow := NewNode("slow", trusted, 1, 0.5)
	fast := NewNode("fast", trusted, 1, 2.0)
	alien := NewNode("alien", untrusted, 1, 4.0)
	rm := NewResourceManager(slow, fast, alien)

	n1, err := rm.Recruit(Request{})
	if err != nil || n1.ID != "fast" {
		t.Fatalf("first recruit = %v, %v; want fast", n1, err)
	}
	n2, _ := rm.Recruit(Request{})
	if n2.ID != "slow" {
		t.Fatalf("second recruit = %v; want slow (trusted before untrusted)", n2.ID)
	}
	n3, _ := rm.Recruit(Request{})
	if n3.ID != "alien" {
		t.Fatalf("third recruit = %v; want alien", n3.ID)
	}
	if _, err := rm.Recruit(Request{}); err != ErrExhausted {
		t.Fatalf("exhausted pool: err = %v", err)
	}
}

func TestRecruitTrustedOnly(t *testing.T) {
	p := NewTwoDomainGrid(1, 3)
	n, err := p.RM.Recruit(Request{TrustedOnly: true})
	if err != nil || !n.Domain.Trusted {
		t.Fatalf("recruit = %v, %v", n, err)
	}
	if _, err := p.RM.Recruit(Request{TrustedOnly: true}); err != ErrExhausted {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	// Without the constraint the untrusted capacity is available.
	if _, err := p.RM.Recruit(Request{}); err != nil {
		t.Fatalf("unrestricted recruit failed: %v", err)
	}
}

func TestRecruitMinSpeed(t *testing.T) {
	dom := Domain{Name: "d", Trusted: true}
	rm := NewResourceManager(NewNode("s", dom, 1, 0.5))
	if _, err := rm.Recruit(Request{MinSpeed: 1.0}); err != ErrExhausted {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

func TestCapacityAccounting(t *testing.T) {
	p := NewTwoDomainGrid(2, 2)
	if got := p.RM.CapacityFree(Request{}); got != 4 {
		t.Fatalf("CapacityFree = %d", got)
	}
	if got := p.RM.CapacityFree(Request{TrustedOnly: true}); got != 2 {
		t.Fatalf("trusted CapacityFree = %d", got)
	}
	n, _ := p.RM.Recruit(Request{})
	if p.RM.CoresInUse() != 1 {
		t.Fatalf("CoresInUse = %d", p.RM.CoresInUse())
	}
	n.Release()
	if p.RM.CoresInUse() != 0 {
		t.Fatalf("CoresInUse after release = %d", p.RM.CoresInUse())
	}
}

func TestNewSMPShape(t *testing.T) {
	p := NewSMP(0)
	ns := p.RM.Nodes()
	if len(ns) != 1 || ns[0].Cores != 8 || !ns[0].Domain.Trusted {
		t.Fatalf("unexpected SMP: %+v", ns)
	}
}

func TestNewTwoDomainGridShape(t *testing.T) {
	p := NewTwoDomainGrid(3, 2)
	trusted, untrusted := 0, 0
	for _, n := range p.RM.Nodes() {
		if n.Domain.Trusted {
			trusted++
		} else {
			untrusted++
		}
	}
	if trusted != 3 || untrusted != 2 {
		t.Fatalf("trusted=%d untrusted=%d", trusted, untrusted)
	}
	if p.Network.LinkBetween("trusted.local", "untrusted_ip_domain_A").Private {
		t.Fatal("cross-domain link must be public")
	}
}

// Property: Recruit never returns an untrusted node when TrustedOnly is
// set, and never oversubscribes a node.
func TestRecruitProperties(t *testing.T) {
	f := func(tc, uc uint8, trustedOnly bool) bool {
		p := NewTwoDomainGrid(int(tc%8), int(uc%8))
		seen := map[*Node]int{}
		for {
			n, err := p.RM.Recruit(Request{TrustedOnly: trustedOnly})
			if err != nil {
				break
			}
			if trustedOnly && !n.Domain.Trusted {
				return false
			}
			seen[n]++
			if seen[n] > n.Cores {
				return false
			}
		}
		// All matching capacity must have been handed out.
		return p.RM.CapacityFree(Request{TrustedOnly: trustedOnly}) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelConstrainedRecruitment(t *testing.T) {
	dom := Domain{Name: "d", Trusted: true}
	a := NewNode("a", dom, 2, 1.0)
	a.Labels = map[string]string{"zone": "east", "gpu": "none"}
	b := NewNode("b", dom, 2, 1.0)
	b.Labels = map[string]string{"zone": "west"}
	rm := NewResourceManager(a, b)

	if !a.HasLabels(nil) || !a.HasLabels(map[string]string{"zone": "east"}) {
		t.Fatal("subset label match failed")
	}
	if a.HasLabels(map[string]string{"zone": "west"}) {
		t.Fatal("mismatched label value matched")
	}
	if got := a.Label("gpu"); got != "none" {
		t.Fatalf("Label(gpu) = %q, want none", got)
	}

	n, err := rm.Recruit(Request{Labels: map[string]string{"zone": "west"}})
	if err != nil || n.ID != "b" {
		t.Fatalf("Recruit(zone=west) = %v, %v, want node b", n, err)
	}
	if free := rm.CapacityFree(Request{Labels: map[string]string{"zone": "east"}}); free != 2 {
		t.Fatalf("CapacityFree(zone=east) = %d, want 2", free)
	}
	if _, err := rm.Recruit(Request{Labels: map[string]string{"zone": "north"}}); err == nil {
		t.Fatal("Recruit with unmatched label should exhaust")
	}
}

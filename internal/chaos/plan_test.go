package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestPlanDeterministic(t *testing.T) {
	cfg := StormConfig{Storms: 3}
	p1 := NewPlan(42, cfg)
	p2 := NewPlan(42, cfg)
	s1 := strings.Join(p1.Schedule(), "\n")
	s2 := strings.Join(p2.Schedule(), "\n")
	if s1 != s2 {
		t.Fatalf("same-seed schedules differ:\n%s\n---\n%s", s1, s2)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatalf("same-seed fingerprints differ: %s vs %s",
			p1.Fingerprint(), p2.Fingerprint())
	}
	p3 := NewPlan(43, cfg)
	if p3.Fingerprint() == p1.Fingerprint() {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

func TestPlanCoversTaxonomy(t *testing.T) {
	p := NewPlan(7, StormConfig{Storms: 1})
	for _, k := range Kinds() {
		if !p.Contains(k) {
			t.Errorf("default-size storm misses kind %s", k)
		}
	}
	if got, want := p.Events(), len(Kinds()); got != want {
		t.Errorf("Events() = %d, want %d", got, want)
	}
	total := 0
	for _, n := range p.ByKind() {
		total += n
	}
	if total != p.Events() {
		t.Errorf("ByKind sums to %d, Events() = %d", total, p.Events())
	}
}

// TestPlanRemoteTaxonomyIsOptIn pins the two load-bearing properties of the
// remote-kind extension: a base plan never schedules a remote kind (so the
// committed loopback goldens cannot shift), and an IncludeRemote plan covers
// the extended taxonomy while leaving the base plan's draws untouched only
// where it must — the flag changes the stream, so it is all-or-nothing per
// golden file.
func TestPlanRemoteTaxonomyIsOptIn(t *testing.T) {
	base := NewPlan(7, StormConfig{Storms: 1})
	for _, k := range RemoteKinds() {
		if base.Contains(k) {
			t.Errorf("base plan schedules remote kind %s", k)
		}
	}
	remote := NewPlan(7, StormConfig{Storms: 1, IncludeRemote: true})
	for _, k := range append(Kinds(), RemoteKinds()...) {
		if !remote.Contains(k) {
			t.Errorf("IncludeRemote storm misses kind %s", k)
		}
	}
	if got, want := remote.Events(), len(Kinds())+len(RemoteKinds()); got != want {
		t.Errorf("IncludeRemote Events() = %d, want %d", got, want)
	}
	// Same seed + same config stays deterministic with the flag set.
	if remote.Fingerprint() != NewPlan(7, StormConfig{Storms: 1, IncludeRemote: true}).Fingerprint() {
		t.Error("IncludeRemote plans are not deterministic")
	}
}

func TestPlanEventsOrderedAndWindowed(t *testing.T) {
	cfg := StormConfig{Storms: 2, EventsPerStorm: 20,
		Warmup: 5 * time.Second, Span: 8 * time.Second, Quiet: 12 * time.Second}
	p := NewPlan(99, cfg)
	if len(p.Storms) != 2 {
		t.Fatalf("storms = %d", len(p.Storms))
	}
	base := cfg.Warmup
	for si, storm := range p.Storms {
		if len(storm.Events) != 20 {
			t.Fatalf("storm %d has %d events", si, len(storm.Events))
		}
		prev := time.Duration(-1)
		for _, ev := range storm.Events {
			if ev.At < prev {
				t.Fatalf("storm %d events out of order: %v after %v", si, ev.At, prev)
			}
			prev = ev.At
			if ev.At < base || ev.At >= base+cfg.Span {
				t.Fatalf("storm %d event at %v outside window [%v, %v)",
					si, ev.At, base, base+cfg.Span)
			}
		}
		base += cfg.Span + cfg.Quiet
	}
}

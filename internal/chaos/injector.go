package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abc"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

// ErrInjectedActuator marks an actuator failure injected by the chaos
// plane. It is transient: the abc.Guard's retry policy is allowed to absorb
// it if the fault window closes in time.
var ErrInjectedActuator = errors.New("chaos: injected actuator failure")

// ErrInjectedRecruit marks a transient injected recruitment failure
// (retryable, unlike an injected outage which wraps grid.ErrExhausted).
var ErrInjectedRecruit = errors.New("chaos: injected flaky recruitment")

// Targets binds an Injector to the system under test. Farm is mandatory;
// every other target is optional and its faults are skipped when absent.
type Targets struct {
	Farm *skel.Farm
	// Exec receives the actuator fault hook.
	Exec *abc.FarmABC
	// RM receives the recruitment fault hook.
	RM *grid.ResourceManager
	// Nodes are external-load spike candidates (typically the platform's).
	Nodes []*grid.Node
	// Network plus the LinkA–LinkB domain pair locate the link to degrade.
	Network      *grid.Network
	LinkA, LinkB string
	// Env supplies the clock and time scale that turn the plan's modelled
	// times into wall time.
	Env skel.Env
	// Log, when set, records every applied fault (source "CHAOS").
	Log *trace.Log
	// Health reports whether the system currently meets its contract; it
	// is polled after each storm to measure recovery.
	Health func() bool
	// MTTR receives one observation per recovered storm: the modelled
	// seconds from the end of the storm until Health turned true.
	MTTR *metrics.Histogram
	// MaxRecover bounds the post-storm recovery wait in modelled time
	// (default 60s). A storm whose recovery exceeds it counts as
	// unrecovered — an invariant violation in the soak harness.
	MaxRecover time.Duration
	// Managers are the management-plane victims of the manager fault
	// kinds. Victims are picked round-robin in slice order across all
	// manager events, so coverage is deterministic per plan: list them in
	// a fixed order. Durations passed to the closures are modelled time;
	// the closures scale them onto their manager's clock.
	Managers []ManagerTarget
	// Remote binds the cross-process dispatch plane's link as a victim of
	// the remote fault kinds. Nil (the loopback default) skips them.
	Remote *RemoteTarget
	// MgrLink binds a remote management link (a manager.RemoteLink in
	// practice) as a victim of the manager-link fault kinds. Nil skips
	// them.
	MgrLink *MgrLinkTarget
}

// RemoteTarget binds a remote dispatch link (an internal/wire.Factory in
// practice, expressed as closures so chaos stays transport-agnostic) as a
// chaos victim. Durations passed to the closures are WALL time: the wire
// plane runs on real connections, so the injector converts the plan's
// modelled windows before calling.
type RemoteTarget struct {
	Name string
	// Drop severs every live framed connection now; returns how many died.
	Drop func() int
	// Delay adds latency to every exec starting within the window.
	Delay func(latency, window time.Duration)
	// Partition stalls all traffic for the window.
	Partition func(window time.Duration)
}

// MgrLinkTarget binds a remote management link as a chaos victim.
// Durations passed to Partition are WALL time, like RemoteTarget's: the
// link's lease machinery runs on its own clock, so the injector converts
// the plan's modelled windows before calling.
type MgrLinkTarget struct {
	Name string
	// Partition makes every management exchange fail for the window; the
	// child's lease expires and violations buffer until reattach.
	Partition func(window time.Duration)
	// Drop fails the next n exchanges outright (a cut connection).
	Drop func(n int)
}

// ManagerTarget binds one management loop as a chaos victim. Crash is
// mandatory for the slot to be usable; Panic and Stall are optional —
// when the loop cannot express them the injector falls back to Crash, so
// every manager event lands on its victim.
type ManagerTarget struct {
	Name string
	// Crash kills the loop; window is the modelled down-window for
	// participants that refuse requests until their restart completes
	// (loop-style managers may ignore it — their downtime is the
	// supervisor's backoff). Returns false when undeliverable.
	Crash func(window time.Duration) bool
	// Panic makes the loop panic mid-cycle (supervisor converts).
	Panic func() bool
	// Stall freezes the loop for the modelled duration d.
	Stall func(d time.Duration) bool
}

// Report summarizes one Injector.Run. Applied counts can depend on runtime
// state (a crash event finds no live worker and is skipped), so replay
// assertions should compare Plan.ByKind plus the invariant verdicts, not
// Applied.
type Report struct {
	Applied     map[Kind]int
	Skipped     map[Kind]int
	Storms      int
	Recovered   int // storms whose Health returned within MaxRecover
	Unrecovered int
}

// Injector executes fault plans against its targets. The windowed faults
// (actuator, recruitment) work through nil-gated hooks installed at
// construction and removed by Close; crash/load/link faults act directly
// on the target objects, restoring state when their window expires.
type Injector struct {
	t     Targets
	clock simclock.Clock

	// fault windows as clock unix-nanos, read by the hooks.
	actFailUntil       atomic.Int64
	actSlowUntil       atomic.Int64
	actDelay           atomic.Int64 // modelled ns
	recruitFlakyUntil  atomic.Int64
	recruitOutageUntil atomic.Int64

	// one-shot worker faults, consumed by the farm's per-task hook.
	pendingPanics atomic.Int32
	pendingStalls atomic.Int32
	stallDur      atomic.Int64 // modelled ns

	injectedActs     atomic.Uint64
	injectedRecruits atomic.Uint64
	injectedMgr      atomic.Uint64

	// mgrRR is the round-robin cursor over Targets.Managers; advanced on
	// every manager fault event (even skipped ones), keeping victim
	// selection a pure function of the plan.
	mgrRR int

	wg     sync.WaitGroup // window-restore goroutines
	closed chan struct{}
}

// NewInjector installs the chaos hooks on the targets and returns the
// injector. Call Close to uninstall them and wait for restores.
func NewInjector(t Targets) *Injector {
	if t.MaxRecover <= 0 {
		t.MaxRecover = 60 * time.Second
	}
	in := &Injector{t: t, clock: t.Env.Clock, closed: make(chan struct{})}
	if in.clock == nil {
		in.clock = simclock.NewReal()
	}
	if t.Farm != nil {
		t.Farm.SetWorkerFault(in.workerFault)
	}
	if t.Exec != nil {
		t.Exec.SetExecuteFault(in.execFault)
	}
	if t.RM != nil {
		t.RM.SetRecruitFault(in.recruitFault)
	}
	return in
}

// Close removes the hooks and waits for outstanding window restores.
func (in *Injector) Close() {
	select {
	case <-in.closed:
	default:
		close(in.closed)
	}
	if in.t.Farm != nil {
		in.t.Farm.SetWorkerFault(nil)
	}
	if in.t.Exec != nil {
		in.t.Exec.SetExecuteFault(nil)
	}
	if in.t.RM != nil {
		in.t.RM.SetRecruitFault(nil)
	}
	in.wg.Wait()
}

// InjectedActuatorFailures returns how many Execute calls the plane vetoed.
func (in *Injector) InjectedActuatorFailures() uint64 { return in.injectedActs.Load() }

// InjectedRecruitFailures returns how many recruitments the plane vetoed.
func (in *Injector) InjectedRecruitFailures() uint64 { return in.injectedRecruits.Load() }

// InjectedManagerFaults returns how many manager faults were delivered.
func (in *Injector) InjectedManagerFaults() uint64 { return in.injectedMgr.Load() }

// nextManager returns the next manager victim round-robin, advancing the
// cursor unconditionally so selection depends only on the plan.
func (in *Injector) nextManager() *ManagerTarget {
	if len(in.t.Managers) == 0 {
		return nil
	}
	t := &in.t.Managers[in.mgrRR%len(in.t.Managers)]
	in.mgrRR++
	return t
}

// real converts a modelled duration to wall time under the env time scale.
func (in *Injector) real(d time.Duration) time.Duration {
	scale := in.t.Env.TimeScale
	if scale <= 0 {
		scale = 1
	}
	out := time.Duration(float64(d) / scale)
	if out <= 0 {
		out = time.Nanosecond
	}
	return out
}

// takeOne atomically consumes one pending one-shot fault.
func takeOne(c *atomic.Int32) bool {
	for {
		v := c.Load()
		if v <= 0 {
			return false
		}
		if c.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// workerFault is the farm's per-task hook.
func (in *Injector) workerFault(string, *skel.Task) skel.WorkerFault {
	if takeOne(&in.pendingPanics) {
		return skel.WorkerFault{Panic: true}
	}
	if takeOne(&in.pendingStalls) {
		return skel.WorkerFault{Stall: time.Duration(in.stallDur.Load())}
	}
	return skel.WorkerFault{}
}

// execFault is the ABC's Execute hook.
func (in *Injector) execFault(op string) error {
	now := in.clock.Now().UnixNano()
	if now < in.actFailUntil.Load() {
		in.injectedActs.Add(1)
		return fmt.Errorf("%w: %s", ErrInjectedActuator, op)
	}
	if now < in.actSlowUntil.Load() {
		in.t.Env.SleepScaled(time.Duration(in.actDelay.Load()))
	}
	return nil
}

// recruitFault is the resource manager's Recruit hook.
func (in *Injector) recruitFault(grid.Request) error {
	now := in.clock.Now().UnixNano()
	if now < in.recruitOutageUntil.Load() {
		in.injectedRecruits.Add(1)
		return fmt.Errorf("chaos: injected recruitment outage: %w", grid.ErrExhausted)
	}
	if now < in.recruitFlakyUntil.Load() {
		in.injectedRecruits.Add(1)
		return ErrInjectedRecruit
	}
	return nil
}

// openWindow extends the given fault window to now + modelled d.
func (in *Injector) openWindow(w *atomic.Int64, d time.Duration) {
	until := in.clock.Now().Add(in.real(d)).UnixNano()
	for {
		cur := w.Load()
		if cur >= until || w.CompareAndSwap(cur, until) {
			return
		}
	}
}

// after runs fn once the modelled window d has elapsed (or immediately on
// Close), always executing fn so injected state is restored.
func (in *Injector) after(d time.Duration, fn func()) {
	in.wg.Add(1)
	go func() {
		defer in.wg.Done()
		select {
		case <-in.closed:
		case <-in.clock.After(in.real(d)):
		}
		fn()
	}()
}

// pickWorker returns the first live worker by ID order (deterministic
// given the farm state), or "" when none is live.
func (in *Injector) pickWorker() (string, *grid.Node) {
	ws := in.t.Farm.Workers()
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	for _, w := range ws {
		if !w.Failed {
			return w.ID, w.Node
		}
	}
	return "", nil
}

func (in *Injector) record(ev Event, detail string) {
	if in.t.Log == nil {
		return
	}
	in.t.Log.Record(in.clock.Now(), "CHAOS", trace.Kind(string(ev.Kind)), detail)
}

// apply executes one fault event. It returns false when the event had no
// viable target and was skipped.
func (in *Injector) apply(ev Event) bool {
	switch ev.Kind {
	case WorkerCrash:
		id, node := in.pickWorker()
		if id == "" {
			return false
		}
		if err := in.t.Farm.KillWorker(id); err != nil {
			return false
		}
		in.record(ev, fmt.Sprintf("%s on %s", id, node.ID))
	case WorkerPanic:
		in.pendingPanics.Add(1)
		in.record(ev, "next task panics")
	case WorkerStall:
		in.stallDur.Store(int64(time.Duration(ev.Param * float64(time.Second))))
		in.pendingStalls.Add(1)
		in.record(ev, fmt.Sprintf("next task stalls %.1fs", ev.Param))
	case ExtLoad:
		_, node := in.pickWorker()
		if node == nil {
			if len(in.t.Nodes) == 0 {
				return false
			}
			node = in.t.Nodes[0]
		}
		n := node
		n.SetExternalLoad(ev.Param)
		in.after(ev.Dur, func() { n.SetExternalLoad(0) })
		in.record(ev, fmt.Sprintf("%s load=%.2f for %v", n.ID, ev.Param, ev.Dur))
	case LinkDegrade:
		if in.t.Network == nil || in.t.LinkA == "" || in.t.LinkB == "" {
			return false
		}
		nw, a, b := in.t.Network, in.t.LinkA, in.t.LinkB
		orig := nw.LinkBetween(a, b)
		nw.SetLink(a, b, grid.Link{
			Latency: orig.Latency + time.Duration(ev.Param)*time.Millisecond,
			Private: orig.Private,
		})
		in.after(ev.Dur, func() { nw.SetLink(a, b, orig) })
		in.record(ev, fmt.Sprintf("%s<->%s +%.0fms for %v", a, b, ev.Param, ev.Dur))
	case RecruitFlaky:
		if in.t.RM == nil {
			return false
		}
		in.openWindow(&in.recruitFlakyUntil, ev.Dur)
		in.record(ev, fmt.Sprintf("for %v", ev.Dur))
	case RecruitOutage:
		if in.t.RM == nil {
			return false
		}
		in.openWindow(&in.recruitOutageUntil, ev.Dur)
		in.record(ev, fmt.Sprintf("for %v", ev.Dur))
	case ActuatorFail:
		if in.t.Exec == nil {
			return false
		}
		in.openWindow(&in.actFailUntil, ev.Dur)
		in.record(ev, fmt.Sprintf("for %v", ev.Dur))
	case ActuatorSlow:
		if in.t.Exec == nil {
			return false
		}
		in.actDelay.Store(int64(time.Duration(ev.Param * float64(time.Millisecond))))
		in.openWindow(&in.actSlowUntil, ev.Dur)
		in.record(ev, fmt.Sprintf("+%.0fms for %v", ev.Param, ev.Dur))
	case ManagerCrash:
		t := in.nextManager()
		if t == nil || t.Crash == nil || !t.Crash(ev.Dur) {
			return false
		}
		in.injectedMgr.Add(1)
		in.record(ev, fmt.Sprintf("%s down %v", t.Name, ev.Dur))
	case ManagerPanic:
		t := in.nextManager()
		if t == nil {
			return false
		}
		// Loops that cannot panic fall back to a crash: the event must
		// land on its victim either way.
		switch {
		case t.Panic != nil && t.Panic():
			in.record(ev, t.Name)
		case t.Crash != nil && t.Crash(0):
			in.record(ev, t.Name+" (as crash)")
		default:
			return false
		}
		in.injectedMgr.Add(1)
	case ManagerStall:
		t := in.nextManager()
		if t == nil {
			return false
		}
		d := time.Duration(ev.Param * float64(time.Second))
		switch {
		case t.Stall != nil && t.Stall(d):
			in.record(ev, fmt.Sprintf("%s stalls %.1fs", t.Name, ev.Param))
		case t.Crash != nil && t.Crash(0):
			in.record(ev, t.Name+" (as crash)")
		default:
			return false
		}
		in.injectedMgr.Add(1)
	case RemoteDrop:
		if in.t.Remote == nil || in.t.Remote.Drop == nil {
			return false
		}
		n := in.t.Remote.Drop()
		in.record(ev, fmt.Sprintf("%s cut %d connections", in.t.Remote.Name, n))
	case RemoteDelay:
		if in.t.Remote == nil || in.t.Remote.Delay == nil {
			return false
		}
		lat := time.Duration(ev.Param * float64(time.Millisecond))
		in.t.Remote.Delay(lat, in.real(ev.Dur))
		in.record(ev, fmt.Sprintf("%s +%.0fms for %v", in.t.Remote.Name, ev.Param, ev.Dur))
	case RemotePartition:
		if in.t.Remote == nil || in.t.Remote.Partition == nil {
			return false
		}
		in.t.Remote.Partition(in.real(ev.Dur))
		in.record(ev, fmt.Sprintf("%s partitioned %v", in.t.Remote.Name, ev.Dur))
	case ManagerPartition:
		if in.t.MgrLink == nil || in.t.MgrLink.Partition == nil {
			return false
		}
		in.t.MgrLink.Partition(in.real(ev.Dur))
		in.record(ev, fmt.Sprintf("%s partitioned %v", in.t.MgrLink.Name, ev.Dur))
	case ManagerLinkDrop:
		if in.t.MgrLink == nil || in.t.MgrLink.Drop == nil {
			return false
		}
		in.t.MgrLink.Drop(2)
		in.record(ev, fmt.Sprintf("%s dropped 2 exchanges", in.t.MgrLink.Name))
	default:
		return false
	}
	return true
}

// Run drives the plan to completion: each storm's events fire at their
// modelled offsets, then — when a Health probe is configured — recovery is
// polled and the storm's MTTR observed. Run blocks until the plan is done
// or ctx is canceled, then waits for all fault windows to restore.
func (in *Injector) Run(ctx context.Context, p Plan) Report {
	rep := Report{Applied: map[Kind]int{}, Skipped: map[Kind]int{}}
	elapsed := time.Duration(0) // modelled time since run start
	defer in.wg.Wait()
	for _, storm := range p.Storms {
		for _, ev := range storm.Events {
			if ev.At > elapsed {
				if !in.sleep(ctx, ev.At-elapsed) {
					return rep
				}
				elapsed = ev.At
			}
			if in.apply(ev) {
				rep.Applied[ev.Kind]++
			} else {
				rep.Skipped[ev.Kind]++
			}
		}
		rep.Storms++
		if in.t.Health == nil {
			continue
		}
		// The storm has fully landed; measure how long the management
		// plane needs to re-establish the contract.
		recovered := false
		var waited time.Duration
		const probe = 250 * time.Millisecond // modelled
		for waited < in.t.MaxRecover {
			if in.t.Health() {
				recovered = true
				break
			}
			if !in.sleep(ctx, probe) {
				return rep
			}
			waited += probe
			elapsed += probe
		}
		if recovered {
			rep.Recovered++
			if in.t.MTTR != nil {
				in.t.MTTR.Observe(waited.Seconds())
			}
		} else {
			rep.Unrecovered++
		}
	}
	return rep
}

// sleep waits a modelled duration, reporting false on cancelation.
func (in *Injector) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-in.clock.After(in.real(d)):
		return true
	}
}

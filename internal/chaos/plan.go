// Package chaos is the deterministic fault-injection plane of the
// reproduction. It generates seeded fault storms — bursts of faults spread
// over every layer of the stack, separated by quiet recovery windows — and
// drives them through the injection points the layers expose: worker
// crashes, panics and stalls (skel.Farm), external-load spikes (grid.Node),
// link degradation (grid.Network), flaky or exhausted recruitment
// (grid.ResourceManager) and failing or slow actuator operations
// (abc.FarmABC).
//
// Everything about a storm derives from its seed: the same seed always
// yields the same Plan, byte for byte, so any failure found under chaos
// replays exactly. Fault magnitudes and times are expressed in modelled
// time (the skel.Env time scale), keeping schedules identical across
// machines of different speeds.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// Kind names one fault type of the taxonomy.
type Kind string

// The fault taxonomy, one injection point per layer.
const (
	// WorkerCrash kills a live worker outright (grid node loss).
	WorkerCrash Kind = "workerCrash"
	// WorkerPanic makes one worker function panic mid-task.
	WorkerPanic Kind = "workerPanic"
	// WorkerStall freezes one worker for Param modelled seconds.
	WorkerStall Kind = "workerStall"
	// ExtLoad injects external load Param on a busy node for Dur.
	ExtLoad Kind = "extLoad"
	// LinkDegrade adds Param ms of latency to an inter-domain link for Dur.
	LinkDegrade Kind = "linkDegrade"
	// RecruitFlaky makes recruitment fail transiently for Dur (retryable).
	RecruitFlaky Kind = "recruitFlaky"
	// RecruitOutage makes recruitment report pool exhaustion for Dur.
	RecruitOutage Kind = "recruitOutage"
	// ActuatorFail makes every ABC Execute fail for Dur.
	ActuatorFail Kind = "actuatorFail"
	// ActuatorSlow delays every ABC Execute by Param ms for Dur.
	ActuatorSlow Kind = "actuatorSlow"
	// ManagerCrash kills a management loop (round-robin over the manager
	// targets); windowed participants (the two-phase security manager)
	// stay down for Dur before their supervised restart answers again.
	ManagerCrash Kind = "managerCrash"
	// ManagerPanic makes a management loop panic mid-cycle; the supervisor
	// converts it to a restart.
	ManagerPanic Kind = "managerPanic"
	// ManagerStall freezes a management loop for Param modelled seconds.
	ManagerStall Kind = "managerStall"
)

// The remote-link fault taxonomy: faults of the cross-process dispatch
// plane's framed connections (internal/wire). It is deliberately a
// SEPARATE taxonomy, enabled per-plan by StormConfig.IncludeRemote: the
// base Kinds() list feeds the seeded plan generator, so extending it would
// silently rewrite every committed golden schedule. Remote kinds only ever
// appear in plans that asked for them.
const (
	// RemoteDrop severs every live framed connection of the link at once —
	// a cable pull. Affected workers crash, their queues strand, and
	// recovery recruitment re-dials.
	RemoteDrop Kind = "remoteDrop"
	// RemoteDelay adds Param ms of real latency to every remote exec
	// starting within Dur.
	RemoteDelay Kind = "remoteDelay"
	// RemotePartition stalls the link for Dur: frames neither flow nor
	// die, and execs resume when the partition heals.
	RemotePartition Kind = "remotePartition"
)

// The manager-link fault taxonomy: faults of the remote management plane
// (internal/manager's RemoteLink), enabled per-plan by
// StormConfig.IncludeManagerLinks for the same golden-stability reason as
// the remote taxonomy.
const (
	// ManagerPartition makes every management exchange fail for Dur: the
	// child's lease expires, the link declares a partition, violations
	// buffer, and reattach triggers catch-up cycles.
	ManagerPartition Kind = "managerPartition"
	// ManagerLinkDrop fails the next few management exchanges outright —
	// a cut connection rather than a window. Inside a live lease the link
	// only degrades to suspect.
	ManagerLinkDrop Kind = "managerLinkDrop"
)

// Kinds lists the base taxonomy in canonical order. Committed golden
// schedules derive from this list: it must only ever grow behind a new
// StormConfig flag (see RemoteKinds).
func Kinds() []Kind {
	return []Kind{
		WorkerCrash, WorkerPanic, WorkerStall, ExtLoad, LinkDegrade,
		RecruitFlaky, RecruitOutage, ActuatorFail, ActuatorSlow,
		ManagerCrash, ManagerPanic, ManagerStall,
	}
}

// RemoteKinds lists the remote-link taxonomy in canonical order.
func RemoteKinds() []Kind {
	return []Kind{RemoteDrop, RemoteDelay, RemotePartition}
}

// ManagerLinkKinds lists the management-plane taxonomy in canonical order.
func ManagerLinkKinds() []Kind {
	return []Kind{ManagerPartition, ManagerLinkDrop}
}

// Event is one scheduled fault.
type Event struct {
	// At is the modelled offset from run start.
	At   time.Duration
	Kind Kind
	// Param is the kind-specific magnitude: load fraction for ExtLoad,
	// added milliseconds for LinkDegrade and ActuatorSlow, stall seconds
	// for WorkerStall.
	Param float64
	// Dur is the modelled window length for windowed faults.
	Dur time.Duration
}

// String renders the event deterministically for schedules.
func (e Event) String() string {
	return fmt.Sprintf("@%v %s p=%.3f dur=%v", e.At, e.Kind, e.Param, e.Dur)
}

// Storm is one burst of faults followed (by construction of the Plan) by a
// quiet recovery window.
type Storm struct {
	Events []Event
}

// Plan is a complete, fully materialized fault schedule. Plans can also be
// scripted by hand: construct the Storms literally.
type Plan struct {
	Seed   int64
	Storms []Storm
}

// StormConfig shapes plan generation.
type StormConfig struct {
	// Storms is the number of bursts (default 3).
	Storms int
	// EventsPerStorm is the number of faults per burst. The first
	// len(Kinds()) events of every storm cycle through the whole taxonomy
	// before random draws start, so any storm at least that large covers
	// every fault kind. Default len(Kinds()).
	EventsPerStorm int
	// Warmup is the modelled delay before the first storm (default 10s):
	// the farm reaches steady state so recovery is measured against a
	// satisfied contract.
	Warmup time.Duration
	// Span is the modelled window the storm's events spread over
	// (default 10s).
	Span time.Duration
	// Quiet is the modelled recovery window after each storm
	// (default 30s).
	Quiet time.Duration
	// IncludeRemote extends the taxonomy with RemoteKinds(), for runs with
	// a live cross-process dispatch plane. Plans generated without it are
	// bit-for-bit what they were before the remote taxonomy existed, which
	// is what keeps the committed loopback goldens valid.
	IncludeRemote bool
	// IncludeManagerLinks extends the taxonomy with ManagerLinkKinds(),
	// for runs with a remote management plane (a child manager linked to
	// its parent over the wire). Same golden-stability contract as
	// IncludeRemote.
	IncludeManagerLinks bool
}

func (c StormConfig) normalized() StormConfig {
	if c.Storms <= 0 {
		c.Storms = 3
	}
	if c.EventsPerStorm <= 0 {
		c.EventsPerStorm = len(Kinds())
		if c.IncludeRemote {
			c.EventsPerStorm += len(RemoteKinds())
		}
		if c.IncludeManagerLinks {
			c.EventsPerStorm += len(ManagerLinkKinds())
		}
	}
	if c.Warmup <= 0 {
		c.Warmup = 10 * time.Second
	}
	if c.Span <= 0 {
		c.Span = 10 * time.Second
	}
	if c.Quiet <= 0 {
		c.Quiet = 30 * time.Second
	}
	return c
}

// millis draws a uniform duration in [lo, hi] milliseconds.
func millis(rng *rand.Rand, lo, hi int64) time.Duration {
	return time.Duration(lo+rng.Int63n(hi-lo+1)) * time.Millisecond
}

// NewPlan generates a deterministic fault plan from the seed: every value
// of every event is a draw from one seeded PRNG consumed in a fixed order,
// so the same (seed, cfg) pair always produces the identical Plan.
func NewPlan(seed int64, cfg StormConfig) Plan {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(seed))
	kinds := Kinds()
	if cfg.IncludeRemote {
		kinds = append(kinds, RemoteKinds()...)
	}
	if cfg.IncludeManagerLinks {
		kinds = append(kinds, ManagerLinkKinds()...)
	}
	p := Plan{Seed: seed}
	base := cfg.Warmup
	for s := 0; s < cfg.Storms; s++ {
		events := make([]Event, 0, cfg.EventsPerStorm)
		for i := 0; i < cfg.EventsPerStorm; i++ {
			k := kinds[i%len(kinds)]
			if i >= len(kinds) {
				k = kinds[rng.Intn(len(kinds))]
			}
			ev := Event{At: base + time.Duration(rng.Int63n(int64(cfg.Span))), Kind: k}
			switch k {
			case WorkerCrash, WorkerPanic:
				// instantaneous, no magnitude
			case WorkerStall:
				ev.Param = float64(5+rng.Intn(11)) + float64(rng.Intn(1000))/1000 // 5–16 s
			case ExtLoad:
				ev.Param = 0.5 + float64(rng.Intn(400))/1000 // 0.5–0.9
				ev.Dur = millis(rng, 5000, 12000)
			case LinkDegrade:
				ev.Param = float64(20 + rng.Intn(81)) // +20–100 ms
				ev.Dur = millis(rng, 5000, 12000)
			case RecruitFlaky:
				ev.Dur = millis(rng, 3000, 8000)
			case RecruitOutage:
				ev.Dur = millis(rng, 5000, 10000)
			case ActuatorFail:
				ev.Dur = millis(rng, 5000, 10000)
			case ActuatorSlow:
				ev.Param = float64(200 + rng.Intn(401)) // 200–600 ms
				ev.Dur = millis(rng, 5000, 10000)
			case ManagerCrash:
				ev.Dur = millis(rng, 2000, 6000) // participant down-window
			case ManagerPanic:
				// instantaneous, no magnitude
			case ManagerStall:
				ev.Param = float64(2+rng.Intn(5)) + float64(rng.Intn(1000))/1000 // 2–7 s
			case RemoteDrop:
				// instantaneous, no magnitude
			case RemoteDelay:
				ev.Param = float64(20 + rng.Intn(81)) // +20–100 ms
				ev.Dur = millis(rng, 3000, 8000)
			case RemotePartition:
				ev.Dur = millis(rng, 1000, 4000)
			case ManagerPartition:
				ev.Dur = millis(rng, 2000, 6000)
			case ManagerLinkDrop:
				// instantaneous, no magnitude
			}
			events = append(events, ev)
		}
		sort.SliceStable(events, func(i, j int) bool {
			if events[i].At != events[j].At {
				return events[i].At < events[j].At
			}
			return events[i].Kind < events[j].Kind
		})
		p.Storms = append(p.Storms, Storm{Events: events})
		base += cfg.Span + cfg.Quiet
	}
	return p
}

// Schedule renders the plan as deterministic one-line-per-event text, the
// replay-identity artifact two same-seed runs must agree on byte for byte.
func (p Plan) Schedule() []string {
	var out []string
	for si, storm := range p.Storms {
		for _, ev := range storm.Events {
			out = append(out, fmt.Sprintf("storm%d %s", si+1, ev))
		}
	}
	return out
}

// Fingerprint condenses the schedule (and seed) into a short stable hash.
func (p Plan) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d;", p.Seed)
	for _, line := range p.Schedule() {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Contains reports whether the plan schedules at least one event of kind k.
func (p Plan) Contains(k Kind) bool {
	for _, storm := range p.Storms {
		for _, ev := range storm.Events {
			if ev.Kind == k {
				return true
			}
		}
	}
	return false
}

// Events returns the total number of scheduled events.
func (p Plan) Events() int {
	n := 0
	for _, storm := range p.Storms {
		n += len(storm.Events)
	}
	return n
}

// ByKind returns the number of scheduled events per kind — deterministic
// given the plan, so it belongs in replayable summaries.
func (p Plan) ByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, storm := range p.Storms {
		for _, ev := range storm.Events {
			out[ev.Kind]++
		}
	}
	return out
}

// Package repro is the public facade of the behavioural-skeletons
// reproduction (Aldinucci, Danelutto, Kilpatrick: "Autonomic management of
// non-functional concerns in distributed & parallel application
// programming", IPDPS 2009).
//
// A behavioural skeleton is a pair <P, M_C> of a parallelism-exploitation
// pattern and an autonomic manager responsible for a non-functional
// concern. This package re-exports the pieces a downstream user needs:
//
//   - contracts (SLAs) and their P_spl splitting heuristics,
//   - application builders for the evaluated skeleton shapes
//     (farm(seq) and pipe(seq, farm(seq), seq)),
//   - the skeleton-expression parser,
//   - the multi-concern coordination modes of §3.2, and
//   - the experiment harnesses regenerating the paper's figures.
//
// See examples/ for runnable programs and bench_test.go for the per-figure
// regeneration benchmarks.
package repro

import (
	"io"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/manager"
	"repro/internal/rules"
	"repro/internal/simclock"
	"repro/internal/skel"
	"repro/internal/trace"
)

// Re-exported core types.
type (
	// App is a runnable behavioural-skeleton application.
	App = core.App
	// Result is the outcome of an App run: event log plus sampled series.
	Result = core.Result
	// BS is an assembled behavioural skeleton <P, M_C>.
	BS = core.BS
	// Spec is a parsed skeleton expression.
	Spec = core.Spec
	// FarmAppConfig parameterizes a farm(seq) application.
	FarmAppConfig = core.FarmAppConfig
	// PipelineAppConfig parameterizes a pipe(seq, farm(seq), seq)
	// application.
	PipelineAppConfig = core.PipelineAppConfig
	// StreamAppConfig parameterizes an arbitrary seq/farm pipeline.
	StreamAppConfig = core.StreamAppConfig
	// StageSpec describes one stage of a StreamApp.
	StageSpec = core.StageSpec

	// Contract is a non-functional SLA.
	Contract = contract.Contract
	// ThroughputRange contracts tasks/s within [Lo, Hi].
	ThroughputRange = contract.ThroughputRange
	// Snapshot is the monitored state contracts are checked against.
	Snapshot = contract.Snapshot
	// Verdict is a contract check outcome.
	Verdict = contract.Verdict

	// Env carries the clock and time scale of an application.
	Env = skel.Env
	// Task is one stream element.
	Task = skel.Task
	// Platform is a simulated execution environment.
	Platform = grid.Platform
	// FarmLimits bounds a farm manager's reconfiguration space.
	FarmLimits = manager.FarmLimits
	// CoordinationMode selects the §3.2 multi-concern scheme.
	CoordinationMode = manager.CoordinationMode
	// EventLog is the autonomic event log of a run.
	EventLog = trace.Log
	// ExperimentOptions configures an experiment harness run.
	ExperimentOptions = experiments.Options
)

// Multi-concern coordination modes.
const (
	TwoPhase  = manager.TwoPhase
	Reactive  = manager.Reactive
	Unmanaged = manager.Unmanaged
)

// Stream-app stage kinds.
const (
	StageSeq  = core.StageSeq
	StageFarm = core.StageFarm
)

// NewEnv returns a wall-clock environment running modelled time scale
// times faster than real time (scale <= 0 means 1).
func NewEnv(scale float64) Env {
	return Env{Clock: simclock.NewReal(), TimeScale: scale}
}

// NewFarmApp assembles a farm(seq) behavioural-skeleton application with a
// single autonomic manager (the Fig. 3 setup).
func NewFarmApp(cfg FarmAppConfig) (*App, error) { return core.NewFarmApp(cfg) }

// NewPipelineApp assembles the pipe(seq, farm(seq), seq) application with
// the AM_A / AM_P / AM_F / AM_C manager hierarchy (the Fig. 4 setup).
func NewPipelineApp(cfg PipelineAppConfig) (*App, error) { return core.NewPipelineApp(cfg) }

// NewStreamApp assembles an arbitrary pipeline of seq and farm stages,
// each with its own manager, under one application manager. Use
// StageSpec.Farmize to apply the §4.2 stage-to-farm transformation.
func NewStreamApp(cfg StreamAppConfig) (*App, error) { return core.NewStreamApp(cfg) }

// ParseExpr parses a skeleton expression such as
// "pipe(seq, farm(seq), seq)".
func ParseExpr(src string) (*Spec, error) { return core.ParseExpr(src) }

// BuildFromExpr assembles an application from a skeleton expression using
// whichever of the two configs matches its shape.
func BuildFromExpr(expr string, farmCfg FarmAppConfig, pipeCfg PipelineAppConfig) (*App, error) {
	return core.BuildFromExpr(expr, farmCfg, pipeCfg)
}

// ParseContract parses the textual contract syntax, e.g.
// "throughput:0.3-0.7", "throughput>=0.6", "secure+throughput>=0.6".
func ParseContract(s string) (Contract, error) { return contract.Parse(s) }

// MinThroughput returns the lower-bound throughput contract of Fig. 3.
func MinThroughput(lo float64) ThroughputRange { return contract.MinThroughput(lo) }

// NewThroughputRange returns the c_tRange contract of Fig. 4.
func NewThroughputRange(lo, hi float64) (ThroughputRange, error) {
	return contract.NewThroughputRange(lo, hi)
}

// NewSMP builds the paper's SMP test platform.
func NewSMP(cores int) *Platform { return grid.NewSMP(cores) }

// NewTwoDomainGrid builds the §3.2 platform with an untrusted domain.
func NewTwoDomainGrid(trustedCores, untrustedCores int) *Platform {
	return grid.NewTwoDomainGrid(trustedCores, untrustedCores)
}

// FarmRuleSource is the Fig. 5 rule file in this engine's DRL dialect.
const FarmRuleSource = rules.FarmRuleSource

// Experiment harnesses (one per evaluation artefact; see EXPERIMENTS.md).
var (
	// Fig3 reproduces Fig. 3 (single manager, 0.6 task/s farm contract).
	Fig3 = experiments.Fig3
	// Fig4 reproduces Fig. 4 (hierarchical management, 0.3-0.7 contract).
	Fig4 = experiments.Fig4
	// ExtLoad reproduces the §4.2 external-load adaptation narrative.
	ExtLoad = experiments.ExtLoad
	// MultiConcern reproduces the §3.2 two-phase vs. naive comparison.
	MultiConcern = experiments.MultiConcern
	// ContractSplit demonstrates the P_spl heuristics.
	ContractSplit = experiments.ContractSplit
	// FaultTolerance runs the EXT-FT crash-recovery experiment.
	FaultTolerance = experiments.FaultTolerance
	// Farmize runs the EXT-FARMIZE stage-to-farm comparison.
	Farmize = experiments.Farmize
)

// RenderTimeline writes the run's autonomic event log, one event per line.
func RenderTimeline(w io.Writer, res *Result) {
	io.WriteString(w, res.Log.Timeline())
}

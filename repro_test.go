package repro

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestFacadeFarmApp(t *testing.T) {
	app, err := NewFarmApp(FarmAppConfig{
		Env:            NewEnv(1000),
		Platform:       NewSMP(8),
		Tasks:          20,
		TaskWork:       100 * time.Millisecond,
		SourceInterval: 50 * time.Millisecond,
		Contract:       MinThroughput(0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 {
		t.Fatalf("completed %d/20", res.Completed)
	}
	var sb strings.Builder
	RenderTimeline(&sb, res)
	if !strings.Contains(sb.String(), "newContract") {
		t.Fatalf("timeline missing contract installation:\n%s", sb.String())
	}
}

func TestFacadeContractHelpers(t *testing.T) {
	c, err := ParseContract("secure+throughput:0.3-0.7")
	if err != nil {
		t.Fatal(err)
	}
	if c.Describe() != "secure+throughput:0.3-0.7" {
		t.Fatalf("Describe = %q", c.Describe())
	}
	tr, err := NewThroughputRange(0.3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Check(Snapshot{Throughput: 0.5}).OK() {
		t.Fatal("in-range snapshot violated")
	}
	if MinThroughput(0.6).Check(Snapshot{Throughput: 0.5}).OK() {
		t.Fatal("below-bound snapshot satisfied")
	}
}

func TestFacadeExprAndPlatforms(t *testing.T) {
	spec, err := ParseExpr("pipe(seq, farm(seq), seq)")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Stages() != 3 {
		t.Fatalf("Stages = %d", spec.Stages())
	}
	if got := len(NewTwoDomainGrid(2, 3).RM.Nodes()); got != 5 {
		t.Fatalf("grid nodes = %d", got)
	}
	if !strings.Contains(FarmRuleSource, "CheckRateLow") {
		t.Fatal("FarmRuleSource not exported correctly")
	}
}

func TestFacadeCoordinationModes(t *testing.T) {
	for _, m := range []CoordinationMode{TwoPhase, Reactive, Unmanaged} {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
}

func TestFacadeExperimentFunctions(t *testing.T) {
	// Smoke: the exported harness variables are callable with tiny runs.
	res, err := Fig3(context.Background(), ExperimentOptions{Scale: 1000, Tasks: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 30 {
		t.Fatalf("Fig3 completed %d/30", res.Completed)
	}
	rows, err := ContractSplit(context.Background(), ExperimentOptions{})
	if err != nil || len(rows) == 0 {
		t.Fatalf("ContractSplit = %v, %v", rows, err)
	}
}

func TestFacadeBuildFromExpr(t *testing.T) {
	env := NewEnv(1000)
	app, err := BuildFromExpr("farm(seq)",
		FarmAppConfig{Env: env, Platform: NewSMP(4), Tasks: 5, TaskWork: time.Millisecond},
		PipelineAppConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil || res.Completed != 5 {
		t.Fatalf("run: %v, completed %d", err, res.Completed)
	}
	if res.Log.Count("AM_F", trace.NewContr) == 0 {
		t.Fatal("manager never received a contract")
	}
}
